package blob

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestNewShape(t *testing.T) {
	b := New(2, 3, 4, 5)
	if b.Count() != 120 {
		t.Fatalf("count = %d, want 120", b.Count())
	}
	if b.Num() != 2 || b.Channels() != 3 || b.Height() != 4 || b.Width() != 5 {
		t.Fatalf("legacy dims wrong: %v", b.Shape())
	}
	if b.AxisCount() != 4 {
		t.Fatalf("axes = %d", b.AxisCount())
	}
}

func TestLegacyDimsDefaultToOne(t *testing.T) {
	b := New(7, 9)
	if b.Height() != 1 || b.Width() != 1 {
		t.Fatalf("2-D blob H/W should be 1, got %d %d", b.Height(), b.Width())
	}
}

func TestOffsetMatchesPaperFormula(t *testing.T) {
	// Paper §2.1.1: value at (n, k, h, w) lives at ((n*K+k)*H+h)*W+w.
	n, k, h, w := 3, 2, 5, 4
	b := New(n, k, h, w)
	for ni := 0; ni < n; ni++ {
		for ki := 0; ki < k; ki++ {
			for hi := 0; hi < h; hi++ {
				for wi := 0; wi < w; wi++ {
					want := ((ni*k+ki)*h+hi)*w + wi
					if got := b.Offset(ni, ki, hi, wi); got != want {
						t.Fatalf("Offset(%d,%d,%d,%d) = %d, want %d", ni, ki, hi, wi, got, want)
					}
				}
			}
		}
	}
}

func TestPartialOffset(t *testing.T) {
	b := New(4, 3, 2)
	if got := b.Offset(2); got != 2*3*2 {
		t.Fatalf("Offset(2) = %d", got)
	}
	if got := b.Offset(2, 1); got != 2*6+1*2 {
		t.Fatalf("Offset(2,1) = %d", got)
	}
	if got := b.Offset(); got != 0 {
		t.Fatalf("Offset() = %d", got)
	}
}

func TestOffsetPanicsOutOfRange(t *testing.T) {
	b := New(2, 2)
	for _, idx := range [][]int{{2, 0}, {0, 2}, {-1, 0}, {0, 0, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Offset(%v) did not panic", idx)
				}
			}()
			b.Offset(idx...)
		}()
	}
}

func TestReshapeReusesBuffer(t *testing.T) {
	b := New(10, 10)
	p := &b.Data()[0]
	b.Reshape(5, 5)
	if b.Count() != 25 {
		t.Fatalf("count after shrink = %d", b.Count())
	}
	if &b.Data()[0] != p {
		t.Fatal("shrinking reshape reallocated")
	}
	b.Reshape(10, 10)
	if &b.Data()[0] != p {
		t.Fatal("re-grow within capacity reallocated")
	}
}

func TestReshapeGrows(t *testing.T) {
	b := New(2)
	b.Data()[0] = 5
	b.Reshape(100)
	if b.Count() != 100 {
		t.Fatalf("count = %d", b.Count())
	}
	// Grown buffer is zeroed.
	for i, v := range b.Data() {
		if v != 0 {
			t.Fatalf("grown data[%d] = %v, want 0", i, v)
		}
	}
}

func TestNegativeDimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative dim did not panic")
		}
	}()
	New(2, -1)
}

func TestTooManyAxesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("too many axes did not panic")
		}
	}()
	New(1, 1, 1, 1, 1, 1, 1, 1, 1)
}

func TestDimNegativeIndexing(t *testing.T) {
	b := New(2, 3, 4)
	if b.Dim(-1) != 4 || b.Dim(-3) != 2 {
		t.Fatalf("negative Dim indexing wrong")
	}
}

func TestAtSet(t *testing.T) {
	b := New(2, 3)
	b.Set(7.5, 1, 2)
	if b.At(1, 2) != 7.5 {
		t.Fatal("At/Set roundtrip failed")
	}
	if b.Data()[5] != 7.5 {
		t.Fatal("Set wrote wrong flat location")
	}
}

func TestZeroAndScale(t *testing.T) {
	b := New(4)
	for i := range b.Data() {
		b.Data()[i] = float32(i + 1)
		b.Diff()[i] = float32(i + 1)
	}
	b.ScaleData(2)
	if b.Data()[3] != 8 {
		t.Fatal("ScaleData wrong")
	}
	b.ScaleDiff(0.5)
	if b.Diff()[3] != 2 {
		t.Fatal("ScaleDiff wrong")
	}
	b.ZeroData()
	b.ZeroDiff()
	for i := range b.Data() {
		if b.Data()[i] != 0 || b.Diff()[i] != 0 {
			t.Fatal("Zero* left residue")
		}
	}
}

func TestUpdate(t *testing.T) {
	b := New(3)
	copy(b.Data(), []float32{10, 20, 30})
	copy(b.Diff(), []float32{1, 2, 3})
	b.Update()
	want := []float32{9, 18, 27}
	for i, v := range b.Data() {
		if v != want[i] {
			t.Fatalf("Update: data[%d]=%v want %v", i, v, want[i])
		}
	}
}

func TestAccumulateDiff(t *testing.T) {
	a, b := New(3), New(3)
	copy(a.Diff(), []float32{1, 2, 3})
	copy(b.Diff(), []float32{10, 20, 30})
	a.AccumulateDiffFrom(b)
	if a.Diff()[2] != 33 {
		t.Fatalf("accumulate: %v", a.Diff())
	}
}

func TestAccumulateDiffRange(t *testing.T) {
	a, b := New(5), New(5)
	copy(a.Diff(), []float32{1, 2, 3, 4, 5})
	copy(b.Diff(), []float32{10, 20, 30, 40, 50})
	a.AccumulateDiffRange(b, 1, 4)
	if got, want := a.Diff(), []float32{1, 22, 33, 44, 5}; !equalF32(got, want) {
		t.Fatalf("range accumulate: got %v, want %v", got, want)
	}
	a.AccumulateDiffRange(b, 2, 2) // empty range is a no-op
	if got, want := a.Diff(), []float32{1, 22, 33, 44, 5}; !equalF32(got, want) {
		t.Fatalf("empty range accumulate changed diff: %v", got)
	}
}

func equalF32(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestAccumulateDiffRangeCoversLikeFull: folding every disjoint slice of
// [0, n) must equal one full AccumulateDiffFrom — the invariant
// Coarse.Backward's element-parallel merge depends on.
func TestAccumulateDiffRangeCoversLikeFull(t *testing.T) {
	const n = 23
	full, sliced, src := New(n), New(n), New(n)
	for i := 0; i < n; i++ {
		full.Diff()[i] = float32(i) * 0.25
		sliced.Diff()[i] = float32(i) * 0.25
		src.Diff()[i] = float32(n-i) * 0.125
	}
	full.AccumulateDiffFrom(src)
	for lo := 0; lo < n; lo += 5 {
		hi := lo + 5
		if hi > n {
			hi = n
		}
		sliced.AccumulateDiffRange(src, lo, hi)
	}
	if !equalF32(full.Diff(), sliced.Diff()) {
		t.Fatalf("sliced fold %v != full fold %v", sliced.Diff(), full.Diff())
	}
}

func TestAccumulateDiffRangePanics(t *testing.T) {
	cases := []struct {
		name   string
		target *Blob
		lo, hi int
	}{
		{"count mismatch", New(4), 0, 3},
		{"negative lo", New(3), -1, 2},
		{"hi out of range", New(3), 0, 4},
		{"inverted range", New(3), 2, 1},
	}
	for _, tc := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", tc.name)
				}
			}()
			tc.target.AccumulateDiffRange(New(3), tc.lo, tc.hi)
		}()
	}
}

func TestCopyMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched copy did not panic")
		}
	}()
	New(3).CopyDataFrom(New(4))
}

func TestNorms(t *testing.T) {
	b := New(3)
	copy(b.Data(), []float32{-1, 2, -3})
	copy(b.Diff(), []float32{-2, 0, 2})
	if b.AsumData() != 6 {
		t.Fatalf("AsumData = %v", b.AsumData())
	}
	if b.AsumDiff() != 4 {
		t.Fatalf("AsumDiff = %v", b.AsumDiff())
	}
	if b.SumSqData() != 14 {
		t.Fatalf("SumSqData = %v", b.SumSqData())
	}
}

func TestSameShape(t *testing.T) {
	if !New(2, 3).SameShape(New(2, 3)) {
		t.Fatal("equal shapes reported different")
	}
	if New(2, 3).SameShape(New(3, 2)) {
		t.Fatal("different shapes reported same")
	}
	if New(6).SameShape(New(2, 3)) {
		t.Fatal("different rank reported same")
	}
}

func TestShareDataWith(t *testing.T) {
	a, b := New(4), New(4)
	b.ShareDataWith(a)
	a.Data()[1] = 42
	if b.Data()[1] != 42 {
		t.Fatal("shared data not aliased")
	}
	// Diff remains independent.
	a.Diff()[1] = 7
	if b.Diff()[1] != 0 {
		t.Fatal("diff unexpectedly aliased")
	}
}

func TestNamedAndString(t *testing.T) {
	b := Named("conv1", 2, 2)
	if b.Name() != "conv1" {
		t.Fatal("name lost")
	}
	if !strings.Contains(b.String(), "conv1") || !strings.Contains(b.String(), "(4)") {
		t.Fatalf("String() = %q", b.String())
	}
	b.SetName("x")
	if b.Name() != "x" {
		t.Fatal("SetName failed")
	}
}

func TestCountHelpers(t *testing.T) {
	b := New(2, 3, 4)
	if b.CountFrom(1) != 12 || b.CountFrom(0) != 24 || b.CountFrom(3) != 1 {
		t.Fatal("CountFrom wrong")
	}
	if b.CountRange(0, 2) != 6 || b.CountRange(1, 1) != 1 {
		t.Fatal("CountRange wrong")
	}
}

func TestMemoryBytes(t *testing.T) {
	b := New(10)
	if b.MemoryBytes() != 80 {
		t.Fatalf("MemoryBytes = %d, want 80", b.MemoryBytes())
	}
}

// Property: Offset is a bijection between valid multi-indices and [0, count).
func TestQuickOffsetBijection(t *testing.T) {
	f := func(d0, d1, d2 uint8) bool {
		s0, s1, s2 := int(d0%5)+1, int(d1%5)+1, int(d2%5)+1
		b := New(s0, s1, s2)
		seen := make(map[int]bool)
		for i := 0; i < s0; i++ {
			for j := 0; j < s1; j++ {
				for k := 0; k < s2; k++ {
					off := b.Offset(i, j, k)
					if off < 0 || off >= b.Count() || seen[off] {
						return false
					}
					seen[off] = true
				}
			}
		}
		return len(seen) == b.Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Update is the inverse of adding diff to data.
func TestQuickUpdateInverse(t *testing.T) {
	f := func(vals []float32) bool {
		if len(vals) == 0 {
			return true
		}
		b := New(len(vals))
		copy(b.Data(), vals)
		copy(b.Diff(), vals)
		b.Update() // data = vals - vals = 0
		for _, v := range b.Data() {
			if v != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
