package blob

import "testing"

func TestNewDiffOnlyAliasesBuffers(t *testing.T) {
	b := NewDiffOnly(3, 4)
	if b.Count() != 12 {
		t.Fatalf("count %d", b.Count())
	}
	b.Diff()[5] = 7
	if b.Data()[5] != 7 {
		t.Fatal("data does not alias diff")
	}
	if b.MemoryBytes() != 12*4 {
		t.Fatalf("diff-only memory = %d, want %d", b.MemoryBytes(), 12*4)
	}
}

func TestDiffOnlyReshapePreservesAliasing(t *testing.T) {
	b := NewDiffOnly(4)
	b.Reshape(100) // grow: must re-alias
	b.Diff()[50] = 3
	if b.Data()[50] != 3 {
		t.Fatal("aliasing lost after grow")
	}
	if b.MemoryBytes() != 100*4 {
		t.Fatalf("memory %d", b.MemoryBytes())
	}
	b.Reshape(10) // shrink: stays aliased (same backing)
	b.Diff()[3] = 9
	if b.Data()[3] != 9 {
		t.Fatal("aliasing lost after shrink")
	}
}

func TestDiffOnlyZeroAndAccumulate(t *testing.T) {
	b := NewDiffOnly(4)
	src := New(4)
	copy(src.Diff(), []float32{1, 2, 3, 4})
	b.AccumulateDiffFrom(src)
	b.AccumulateDiffFrom(src)
	if b.Diff()[3] != 8 {
		t.Fatalf("accumulate: %v", b.Diff())
	}
	b.ZeroDiff()
	for _, v := range b.Diff() {
		if v != 0 {
			t.Fatal("zero failed")
		}
	}
}

func TestRegularBlobBuffersIndependent(t *testing.T) {
	b := New(4)
	b.Diff()[1] = 5
	if b.Data()[1] != 0 {
		t.Fatal("regular blob buffers alias")
	}
	if b.MemoryBytes() != 4*8 {
		t.Fatalf("regular memory %d", b.MemoryBytes())
	}
}
