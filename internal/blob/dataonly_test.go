package blob

import "testing"

func TestDataOnlyNeverAllocatesDiff(t *testing.T) {
	b := NewDataOnly(4, 3)
	if b.Diff() != nil {
		t.Fatal("data-only blob allocated a diff buffer")
	}
	if !b.DataOnly() {
		t.Fatal("DataOnly() false on a NewDataOnly blob")
	}
	if got := len(b.Data()); got != 12 {
		t.Fatalf("data length %d, want 12", got)
	}
	b.Reshape(8, 3)
	if b.Diff() != nil {
		t.Fatal("reshape grew a diff buffer on a data-only blob")
	}
	if got := len(b.Data()); got != 24 {
		t.Fatalf("data length after grow %d, want 24", got)
	}
	b.Reshape(2, 3)
	if got, wantCap := len(b.Data()), 24; got != 6 || b.Cap() != wantCap {
		t.Fatalf("shrink: len %d cap %d, want 6/%d (buffer reuse)", got, b.Cap(), wantCap)
	}
}

func TestDataOnlyZeroDiffNoop(t *testing.T) {
	b := NamedDataOnly("x", 3)
	b.ZeroDiff()  // must not panic on the nil diff
	b.ScaleDiff(2)
	if b.Name() != "x" {
		t.Fatalf("name %q", b.Name())
	}
}

func TestDataOnlyMemoryBytes(t *testing.T) {
	full := New(10)
	dataOnly := NewDataOnly(10)
	if full.MemoryBytes() != 80 {
		t.Fatalf("full blob %d bytes, want 80", full.MemoryBytes())
	}
	if dataOnly.MemoryBytes() != 40 {
		t.Fatalf("data-only blob %d bytes, want 40", dataOnly.MemoryBytes())
	}
}

func TestDropDiff(t *testing.T) {
	b := New(5)
	b.Data()[0] = 7
	b.Diff()[0] = 3
	b.DropDiff()
	if b.Diff() != nil || !b.DataOnly() {
		t.Fatal("DropDiff did not release the gradient buffer")
	}
	if b.Data()[0] != 7 {
		t.Fatal("DropDiff disturbed the data buffer")
	}
	b.Reshape(9)
	if b.Diff() != nil {
		t.Fatal("reshape after DropDiff reallocated a diff buffer")
	}
	if b.MemoryBytes() != 9*4 {
		t.Fatalf("memory after drop %d, want 36", b.MemoryBytes())
	}
}

func TestDropDiffOnDiffOnlyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("DropDiff on a diff-only blob did not panic")
		}
	}()
	NewDiffOnly(3).DropDiff()
}
