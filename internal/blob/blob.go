// Package blob implements the N-dimensional array that carries all data and
// gradients through the network, mirroring Caffe's Blob.
//
// A Blob is an N-dimensional array stored C-contiguously. For image batches
// the conventional dimensions are N x K x H x W (batch, channel, height,
// width) and the value at index (n, k, h, w) is physically located at
// ((n*K+k)*H+h)*W+w, exactly the layout the paper describes in §2.1.1.
//
// Every Blob carries two same-shaped buffers: Data (values propagated in the
// forward pass) and Diff (gradients propagated in the backward pass).
package blob

import (
	"fmt"
	"math"
	"strings"
)

// MaxAxes is the largest supported number of blob dimensions.
const MaxAxes = 8

// Blob is an N-dimensional array with a value buffer and a gradient buffer.
type Blob struct {
	name  string
	shape []int
	data  []float32
	diff  []float32
	// diffOnly marks gradient-scratch blobs whose data buffer aliases the
	// diff buffer, halving their footprint (see NewDiffOnly).
	diffOnly bool
	// dataOnly marks forward-only blobs that never allocate a gradient
	// buffer (see NewDataOnly): Diff() stays nil across reshapes, halving
	// the activation footprint of an inference net.
	dataOnly bool
}

// New creates a blob with the given shape. All elements are zero.
// New panics if any dimension is negative.
func New(shape ...int) *Blob {
	b := &Blob{}
	b.Reshape(shape...)
	return b
}

// Named creates a blob with a name (used in diagnostics and net wiring).
func Named(name string, shape ...int) *Blob {
	b := New(shape...)
	b.name = name
	return b
}

// NewLike creates a zeroed blob with the same shape as o.
func NewLike(o *Blob) *Blob {
	return New(o.shape...)
}

// NewDiffOnly creates a blob whose data buffer aliases its diff buffer,
// halving the memory footprint. It is meant for gradient scratch storage
// (the per-worker privatized blobs of the coarse engine, §3.2.1), which
// only ever reads and writes Diff. Callers must not use Data on such a
// blob.
func NewDiffOnly(shape ...int) *Blob {
	b := &Blob{diffOnly: true}
	b.Reshape(shape...)
	return b
}

// NewDataOnly creates a blob that never allocates a gradient buffer: its
// Diff() is nil across every Reshape. It is the dual of NewDiffOnly,
// meant for the activations of forward-only (inference) nets
// (net.NewForward), which only ever read and write Data — the gradient
// half of the memory footprint disappears. ZeroDiff and ScaleDiff are
// no-ops; indexing into Diff() panics, by design.
func NewDataOnly(shape ...int) *Blob {
	b := &Blob{dataOnly: true}
	b.Reshape(shape...)
	return b
}

// NamedDataOnly creates a named blob with no gradient buffer
// (see NewDataOnly).
func NamedDataOnly(name string, shape ...int) *Blob {
	b := NewDataOnly(shape...)
	b.name = name
	return b
}

// DataOnly reports whether the blob carries no gradient buffer.
func (b *Blob) DataOnly() bool { return b.dataOnly }

// DropDiff releases the blob's gradient buffer and converts it to
// data-only mode: subsequent reshapes never reallocate a diff buffer.
// net.NewForward calls this on parameter blobs so a forward-only net
// holds only the coefficients themselves. Panics on a diff-only blob
// (dropping its diff would drop its data).
func (b *Blob) DropDiff() {
	if b.diffOnly {
		panic("blob: DropDiff on a diff-only blob")
	}
	b.dataOnly = true
	b.diff = nil
}

// Name returns the blob's name ("" if unnamed).
func (b *Blob) Name() string { return b.name }

// SetName sets the blob's name.
func (b *Blob) SetName(n string) { b.name = n }

// count returns the product of dims, panicking on negatives or overflow.
func count(shape []int) int {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("blob: negative dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	return n
}

// Reshape changes the blob's shape. The underlying buffers are reused when
// large enough (so repeated reshapes across batches do not allocate), and
// grown otherwise. Newly exposed elements are zeroed.
func (b *Blob) Reshape(shape ...int) {
	if len(shape) > MaxAxes {
		panic(fmt.Sprintf("blob: too many axes %d > %d", len(shape), MaxAxes))
	}
	n := count(shape)
	b.shape = append(b.shape[:0], shape...)
	if b.dataOnly {
		if cap(b.data) < n {
			b.data = make([]float32, n)
		}
		b.data = b.data[:n]
		return
	}
	if cap(b.diff) < n {
		b.diff = make([]float32, n)
		if b.diffOnly {
			b.data = b.diff
		} else {
			b.data = make([]float32, n)
		}
		return
	}
	b.data = b.data[:n]
	b.diff = b.diff[:n]
}

// ReshapeLike reshapes b to o's shape.
func (b *Blob) ReshapeLike(o *Blob) { b.Reshape(o.shape...) }

// Shape returns the blob's dimensions. The returned slice must not be
// modified.
func (b *Blob) Shape() []int { return b.shape }

// ShapeString renders the shape like "64 20 12 12 (184320)".
func (b *Blob) ShapeString() string {
	parts := make([]string, len(b.shape))
	for i, d := range b.shape {
		parts[i] = fmt.Sprint(d)
	}
	return fmt.Sprintf("%s (%d)", strings.Join(parts, " "), b.Count())
}

// AxisCount returns the number of axes.
func (b *Blob) AxisCount() int { return len(b.shape) }

// Dim returns the size of axis i. Negative indices count from the end, as
// in Caffe (Dim(-1) is the innermost axis).
func (b *Blob) Dim(i int) int {
	if i < 0 {
		i += len(b.shape)
	}
	if i < 0 || i >= len(b.shape) {
		panic(fmt.Sprintf("blob: axis %d out of range for shape %v", i, b.shape))
	}
	return b.shape[i]
}

// Count returns the total number of elements.
func (b *Blob) Count() int { return len(b.data) }

// CountFrom returns the product of dimensions from axis `from` (inclusive)
// to the last axis.
func (b *Blob) CountFrom(from int) int {
	n := 1
	for i := from; i < len(b.shape); i++ {
		n *= b.shape[i]
	}
	return n
}

// CountRange returns the product of dimensions in [from, to).
func (b *Blob) CountRange(from, to int) int {
	n := 1
	for i := from; i < to; i++ {
		n *= b.shape[i]
	}
	return n
}

// Num, Channels, Height and Width return the conventional 4-D image batch
// dimensions. Missing trailing axes default to 1, as in Caffe's legacy
// accessors, so a 2-D blob (N, C) has Height() == Width() == 1.
func (b *Blob) Num() int      { return b.legacyDim(0) }
func (b *Blob) Channels() int { return b.legacyDim(1) }
func (b *Blob) Height() int   { return b.legacyDim(2) }
func (b *Blob) Width() int    { return b.legacyDim(3) }

func (b *Blob) legacyDim(i int) int {
	if i < len(b.shape) {
		return b.shape[i]
	}
	return 1
}

// Offset returns the flat index of the element at the given multi-index.
// Fewer indices than axes address the start of the corresponding sub-array.
func (b *Blob) Offset(idx ...int) int {
	if len(idx) > len(b.shape) {
		panic(fmt.Sprintf("blob: %d indices for %d axes", len(idx), len(b.shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= b.shape[i] {
			panic(fmt.Sprintf("blob: index %d out of range [0,%d) on axis %d", x, b.shape[i], i))
		}
		off = off*b.shape[i] + x
	}
	return off * b.CountFrom(len(idx))
}

// Data returns the value buffer. Mutating it mutates the blob.
func (b *Blob) Data() []float32 { return b.data }

// Diff returns the gradient buffer. Mutating it mutates the blob.
func (b *Blob) Diff() []float32 { return b.diff }

// At returns the data value at the multi-index.
func (b *Blob) At(idx ...int) float32 { return b.data[b.Offset(idx...)] }

// Set stores v at the multi-index.
func (b *Blob) Set(v float32, idx ...int) { b.data[b.Offset(idx...)] = v }

// DiffAt returns the gradient value at the multi-index.
func (b *Blob) DiffAt(idx ...int) float32 { return b.diff[b.Offset(idx...)] }

// ZeroData sets every data element to zero.
func (b *Blob) ZeroData() {
	for i := range b.data {
		b.data[i] = 0
	}
}

// ZeroDiff sets every gradient element to zero. Solvers call this between
// iterations; the coarse engine calls it on privatized gradient blobs before
// each backward pass (Algorithm 5 lines 4-5).
func (b *Blob) ZeroDiff() {
	for i := range b.diff {
		b.diff[i] = 0
	}
}

// CopyDataFrom copies o's data into b. Shapes must have equal counts.
func (b *Blob) CopyDataFrom(o *Blob) {
	if len(b.data) != len(o.data) {
		panic(fmt.Sprintf("blob: copy count mismatch %d != %d", len(b.data), len(o.data)))
	}
	copy(b.data, o.data)
}

// CopyDiffFrom copies o's gradients into b. Counts must match.
func (b *Blob) CopyDiffFrom(o *Blob) {
	if len(b.diff) != len(o.diff) {
		panic(fmt.Sprintf("blob: copy count mismatch %d != %d", len(b.diff), len(o.diff)))
	}
	copy(b.diff, o.diff)
}

// ShareDataWith makes b's data buffer alias o's. Used by in-place layers
// and by the net to alias split tops. Shapes must have equal counts.
func (b *Blob) ShareDataWith(o *Blob) {
	if len(b.data) != len(o.data) {
		panic("blob: share count mismatch")
	}
	b.data = o.data
}

// AsumData returns the L1 norm of the data.
func (b *Blob) AsumData() float64 {
	var s float64
	for _, v := range b.data {
		s += math.Abs(float64(v))
	}
	return s
}

// AsumDiff returns the L1 norm of the gradients.
func (b *Blob) AsumDiff() float64 {
	var s float64
	for _, v := range b.diff {
		s += math.Abs(float64(v))
	}
	return s
}

// SumSqData returns the squared L2 norm of the data.
func (b *Blob) SumSqData() float64 {
	var s float64
	for _, v := range b.data {
		s += float64(v) * float64(v)
	}
	return s
}

// ScaleData multiplies every data element by alpha.
func (b *Blob) ScaleData(alpha float32) {
	for i := range b.data {
		b.data[i] *= alpha
	}
}

// ScaleDiff multiplies every gradient element by alpha.
func (b *Blob) ScaleDiff(alpha float32) {
	for i := range b.diff {
		b.diff[i] *= alpha
	}
}

// AccumulateDiffFrom adds o's gradients into b's (b.diff += o.diff).
// This is the merge step of the ordered reduction.
func (b *Blob) AccumulateDiffFrom(o *Blob) {
	if len(b.diff) != len(o.diff) {
		panic("blob: accumulate count mismatch")
	}
	for i, v := range o.diff {
		b.diff[i] += v
	}
}

// AccumulateDiffRange adds o's gradients over the element range [lo, hi)
// into b's: b.diff[lo:hi] += o.diff[lo:hi]. This is the element-sliced
// merge step of the parallel ordered reduction (par.Pool.OrderedSlices):
// each worker owns a disjoint range, so concurrent calls on distinct
// ranges are race-free, and per-element accumulation order is unchanged
// from AccumulateDiffFrom.
func (b *Blob) AccumulateDiffRange(o *Blob, lo, hi int) {
	if len(b.diff) != len(o.diff) {
		panic("blob: accumulate count mismatch")
	}
	if lo < 0 || hi > len(b.diff) || lo > hi {
		panic("blob: accumulate range out of bounds")
	}
	bd, od := b.diff[lo:hi], o.diff[lo:hi]
	for i, v := range od {
		bd[i] += v
	}
}

// Update applies the computed update: data -= diff. Solvers store the final
// per-parameter step in diff and then call Update, exactly as Caffe does.
func (b *Blob) Update() {
	for i := range b.data {
		b.data[i] -= b.diff[i]
	}
}

// SameShape reports whether b and o have identical shapes.
func (b *Blob) SameShape(o *Blob) bool {
	if len(b.shape) != len(o.shape) {
		return false
	}
	for i := range b.shape {
		if b.shape[i] != o.shape[i] {
			return false
		}
	}
	return true
}

// String implements fmt.Stringer.
func (b *Blob) String() string {
	if b.name != "" {
		return fmt.Sprintf("Blob %q [%s]", b.name, b.ShapeString())
	}
	return fmt.Sprintf("Blob [%s]", b.ShapeString())
}

// Cap returns the element capacity of the blob's buffers (>= Count).
func (b *Blob) Cap() int { return cap(b.data) }

// MemoryBytes returns the number of bytes held by the blob's buffers
// (counting an aliased diff-only buffer once, and a dropped diff buffer
// not at all). Used for the paper's §3.2.1 memory-overhead accounting
// and for the forward-only mode's footprint comparison (SERVING.md).
func (b *Blob) MemoryBytes() int64 {
	if b.diffOnly {
		return int64(cap(b.diff)) * 4
	}
	return int64(cap(b.data)+cap(b.diff)) * 4
}
