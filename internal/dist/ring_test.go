package dist

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"coarsegrain/internal/data"
	"coarsegrain/internal/net"
	"coarsegrain/internal/trace"
	"coarsegrain/internal/transport"
	"coarsegrain/internal/zoo"
)

// tcpGroup rendezvouses a k-rank loopback-TCP group.
func tcpGroup(t testing.TB, k int) []transport.Transport {
	t.Helper()
	coord, err := transport.NewCoordinator("127.0.0.1:0", k)
	if err != nil {
		t.Fatal(err)
	}
	trs := make([]transport.Transport, k)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tr, err := coord.Wait()
		if err == nil {
			trs[0] = tr
		}
	}()
	for w := 1; w < k; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tr, err := transport.DialTCP(coord.Addr())
			if err == nil {
				trs[tr.Rank()] = tr
			}
		}()
	}
	wg.Wait()
	for r, tr := range trs {
		if tr == nil {
			t.Fatalf("rank %d failed to rendezvous", r)
		}
	}
	return trs
}

// The ring tentpole contract: the f32 ring all-reduce is bit-identical
// to the tree path at every k, over the in-process transport and over
// real loopback sockets. The relay ring changes who carries the bytes,
// never the arithmetic (ring.go's determinism argument, pinned here).
func TestDistRingF32MatchesTreeBitwise(t *testing.T) {
	for _, k := range []int{2, 3, 4} {
		refW, refL := runDist(t, localGroup(k), Options{}, testIters)
		for _, tc := range []struct {
			name  string
			group func() []transport.Transport
		}{
			{"local", func() []transport.Transport { return localGroup(k) }},
			{"tcp", func() []transport.Transport { return tcpGroup(t, k) }},
		} {
			t.Run(fmt.Sprintf("k%d_%s", k, tc.name), func(t *testing.T) {
				w, l := runDist(t, tc.group(), Options{Topology: TopologyRing}, testIters)
				requireBitIdentical(t, "weights", w, refW)
				for i := range refL {
					if l[i] != refL[i] {
						t.Fatalf("ring loss trace diverged at iter %d: %v vs %v", i, l[i], refL[i])
					}
				}
			})
		}
	}
}

// Lossy codecs quantize each contribution once, at its origin, and the
// owner decodes exactly the frame the origin encoded — whether it came
// point-to-point (tree) or hop-by-hop (ring). So tree and ring must
// agree bitwise under every codec, not just f32.
func TestDistCodecTreeMatchesRingBitwise(t *testing.T) {
	for _, wire := range []string{"f16", "int8"} {
		for _, k := range []int{2, 3} {
			t.Run(fmt.Sprintf("%s_k%d", wire, k), func(t *testing.T) {
				treeW, treeL := runDist(t, localGroup(k), Options{GradWire: wire}, testIters)
				ringW, ringL := runDist(t, localGroup(k), Options{GradWire: wire, Topology: TopologyRing}, testIters)
				requireBitIdentical(t, "weights", ringW, treeW)
				for i := range treeL {
					if ringL[i] != treeL[i] {
						t.Fatalf("loss trace diverged at iter %d: %v vs %v", i, ringL[i], treeL[i])
					}
				}
			})
		}
	}
}

// Compressed training must stay deterministic run-to-run (same seed ⇒
// same bits) and transport-independent — the cluster contract does not
// weaken just because the wire is quantized. Also pins the overlap
// ablation under a codec: the backward-hook scatter must not change
// which values get encoded.
func TestDistCodecDeterministicAcrossRunsAndTransports(t *testing.T) {
	for _, wire := range []string{"f16", "int8"} {
		t.Run(wire, func(t *testing.T) {
			opts := Options{GradWire: wire, Topology: TopologyRing}
			w1, l1 := runDist(t, localGroup(3), opts, testIters)
			w2, _ := runDist(t, localGroup(3), opts, testIters)
			requireBitIdentical(t, "rerun weights", w2, w1)

			w3, l3 := runDist(t, tcpGroup(t, 3), opts, testIters)
			requireBitIdentical(t, "tcp weights", w3, w1)
			for i := range l1 {
				if l3[i] != l1[i] {
					t.Fatalf("tcp loss trace diverged at iter %d: %v vs %v", i, l3[i], l1[i])
				}
			}

			w4, _ := runDist(t, localGroup(3), Options{GradWire: wire, Topology: TopologyRing, NoOverlap: true}, testIters)
			requireBitIdentical(t, "no-overlap weights", w4, w1)
		})
	}
}

// The ring's relay traffic rides the same retry/dedupe machinery as the
// tree's: seeded drop/duplicate/delay faults on every link must be
// absorbed without changing a bit — including duplicated relay frames,
// which the receiver's tag dedupe discards.
func TestDistRingFlakyConvergesBitwise(t *testing.T) {
	opts := Options{Topology: TopologyRing, GradWire: "int8"}
	refW, refL := runDist(t, localGroup(3), opts, testIters)

	locals := transport.NewLocalGroup(3)
	flaky := make([]transport.Transport, 3)
	for i, l := range locals {
		flaky[i] = transport.NewFlaky(l, transport.FlakyConfig{
			DropProb: 0.15, DupProb: 0.15, DelayProb: 0.05,
		}, uint64(40+i))
	}
	w, l := runDist(t, flaky, opts, testIters)
	requireBitIdentical(t, "weights", w, refW)
	for i := range refL {
		if l[i] != refL[i] {
			t.Fatalf("flaky ring loss trace diverged at iter %d: %v vs %v", i, l[i], refL[i])
		}
	}
}

// lenetGroup builds a k-rank LeNet group over synthetic MNIST and runs
// it, returning the root's loss trace — the convergence harness for the
// error-feedback pin.
func lenetLosses(t *testing.T, k, iters int, opts Options) []float64 {
	t.Helper()
	const globalBatch, samples = 8, 32
	src, _ := data.LoadMNIST("", samples, 11)
	trs := localGroup(k)
	var (
		wg     sync.WaitGroup
		losses []float64
		mu     sync.Mutex
		errs   []error
	)
	for r := 0; r < k; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			fail := func(err error) {
				mu.Lock()
				errs = append(errs, fmt.Errorf("rank %d: %w", r, err))
				mu.Unlock()
			}
			shard, err := data.NewShard(src, r, k, globalBatch)
			if err != nil {
				fail(err)
				return
			}
			specs, err := zoo.Build("lenet", shard, zoo.Options{BatchSize: shard.LocalBatch(), Seed: 11})
			if err != nil {
				fail(err)
				return
			}
			n, err := net.New(specs, nil)
			if err != nil {
				fail(err)
				return
			}
			var nd *Node
			if r == 0 {
				cfg := zoo.LeNetSolver()
				nd, err = NewRoot(trs[r], n, cfg, opts)
			} else {
				nd, err = NewWorker(trs[r], n, opts)
			}
			if err == nil {
				var ls []float64
				ls, err = nd.Step(iters)
				if r == 0 {
					losses = ls
				}
			}
			if err != nil {
				fail(err)
			}
			trs[r].Close()
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		t.Fatal(err)
	}
	return losses
}

// The error-feedback convergence pin: LeNet trained with a lossy wire
// format must reach the f32 baseline's loss. The residual is what makes
// this work — without it, int8's quantization error (up to maxabs/254
// per element per iteration) accumulates as a bias; with it, whatever
// one iteration failed to transmit is re-sent the next, and the
// compressed loss curve tracks the baseline within quantization noise.
func TestDistCompressedLeNetReachesBaselineLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("LeNet convergence run")
	}
	const iters = 25
	tail := func(ls []float64) float64 {
		s := 0.0
		for _, v := range ls[len(ls)-5:] {
			s += v
		}
		return s / 5
	}
	base := lenetLosses(t, 2, iters, Options{})
	baseTail := tail(base)
	if baseTail >= base[0] {
		t.Fatalf("f32 baseline did not converge: first loss %v, tail mean %v", base[0], baseTail)
	}
	for _, wire := range []string{"f16", "int8"} {
		t.Run(wire, func(t *testing.T) {
			ls := lenetLosses(t, 2, iters, Options{GradWire: wire, Topology: TopologyRing})
			got := tail(ls)
			// Reaching baseline: the compressed tail must be within 10%
			// of the f32 tail's progress from the initial loss.
			slack := 0.10 * (base[0] - baseTail)
			if got > baseTail+slack {
				t.Fatalf("%s tail loss %v did not reach f32 baseline %v (slack %v); trace %v",
					wire, got, baseTail, slack, ls)
			}
		})
	}
}

// The transport-layer byte accounting behind the ≥3.5x compression
// claim: identical runs, identical traffic pattern, only the codec
// changes — int8 must cut the gradient bytes a Meter counts on the wire
// by at least 3.5x, on the tree and on the ring.
func TestDistInt8CutsGradBytesOnWire(t *testing.T) {
	for _, topo := range []string{TopologyTree, TopologyRing} {
		t.Run(topo, func(t *testing.T) {
			measure := func(wire string) int64 {
				locals := transport.NewLocalGroup(3)
				meters := make([]*transport.Meter, 3)
				trs := make([]transport.Transport, 3)
				for i, l := range locals {
					meters[i] = transport.NewMeter(l)
					trs[i] = meters[i]
				}
				runDist(t, trs, Options{Topology: topo, GradWire: wire}, testIters)
				var total int64
				for _, m := range meters {
					total += m.GradBytes()
				}
				return total
			}
			f32 := measure("f32")
			int8 := measure("int8")
			if f32 == 0 || int8 == 0 {
				t.Fatalf("no gradient traffic metered (f32 %d, int8 %d)", f32, int8)
			}
			ratio := float64(f32) / float64(int8)
			if ratio < 3.5 {
				t.Fatalf("int8 gradient bytes-on-wire reduction %.2fx < 3.5x (f32 %d B, int8 %d B)", ratio, f32, int8)
			}
			t.Logf("%s: f32 %d B, int8 %d B, reduction %.2fx", topo, f32, int8, ratio)
		})
	}
}

// Construction-time validation of the new options.
func TestNodeValidationTopologyAndCodec(t *testing.T) {
	trs := localGroup(1)
	n := shardNet(t, 0, 1)
	if _, err := NewRoot(trs[0], n, solverCfg(), Options{Topology: "mesh"}); err == nil {
		t.Error("unknown topology accepted")
	}
	if _, err := NewRoot(trs[0], n, solverCfg(), Options{GradWire: "bf16"}); err == nil {
		t.Error("unknown wire format accepted")
	}
	if _, err := NewRoot(trs[0], n, solverCfg(), Options{Topology: TopologyRing, GradWire: "f16"}); err != nil {
		t.Errorf("ring+f16 rejected on k=1: %v", err)
	}
}

// BenchmarkTreeVsRing times one lockstep iteration of a 4-rank group on
// the in-process transport, tree vs ring × wire format — the step-time
// side of the EXPERIMENTS.md comm table (bytes are measured by
// TestDistInt8CutsGradBytesOnWire and dnnbench -figure comm).
func BenchmarkTreeVsRing(b *testing.B) {
	for _, topo := range []string{TopologyTree, TopologyRing} {
		for _, wire := range []string{"f32", "f16", "int8"} {
			b.Run(topo+"/"+wire, func(b *testing.B) {
				runDist(b, localGroup(4), Options{Topology: topo, GradWire: wire}, b.N)
			})
		}
	}
}

// The observability satellite: a traced compressed-ring run must expose
// the codec's encode/decode cost and the ring's relay/gather phases as
// comm rows in the utilization report, beside the scatter/fold rows the
// tree path already records — the overhead is measurable, not inferred.
func TestDistTraceShowsCodecAndRingPhases(t *testing.T) {
	trs := localGroup(2)
	tracer := trace.New(1)
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			defer trs[r].Close()
			n := shardNet(t, r, 2)
			if r == 0 {
				n.SetTracer(tracer)
			}
			var nd *Node
			var err error
			opts := Options{Topology: TopologyRing, GradWire: "int8"}
			if r == 0 {
				nd, err = NewRoot(trs[r], n, solverCfg(), opts)
			} else {
				nd, err = NewWorker(trs[r], n, opts)
			}
			if err == nil {
				_, err = nd.Step(2)
			}
			errs[r] = err
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}

	rows := trace.ComputeUtilization(tracer.Snapshot(), 1)
	wall := map[string]bool{}
	for _, u := range rows {
		if u.Phase == trace.PhaseComm && u.Wall > 0 {
			wall[u.Name] = true
		}
	}
	for _, want := range []string{"encode", "decode", "scatter", "relay", "fold", "gather", "bcast"} {
		if !wall[want] {
			t.Errorf("comm phase %q missing from utilization rows (got %v)", want, wall)
		}
	}

	var buf strings.Builder
	trace.WriteUtilizationReport(&buf, tracer.Snapshot(), 1)
	if out := buf.String(); !strings.Contains(out, "encode") || !strings.Contains(out, "decode") {
		t.Errorf("utilization report does not show codec overhead:\n%s", out)
	}
}
