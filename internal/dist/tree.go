package dist

// Tree is the heap-numbered reduction topology over the ranks of a
// training group: rank 0 is the root, and rank r's parent is
// (r-1)/fanout — the FireCaffe-style communication tree that replaces a
// flat parameter server. The tree only ever routes *bytes* (reduced
// slices up, updated weights down); all gradient arithmetic happens at
// slice owners in rank order (see package dist's determinism argument),
// which is why the fan-out can be tuned freely for latency/bandwidth
// without ever changing a single bit of the training result.
type Tree struct {
	size, fanout int
}

// NewTree builds the topology for a group of size ranks with the given
// fan-out (minimum 1; 2 = binary tree, size-1 = flat star).
func NewTree(size, fanout int) Tree {
	if size < 1 {
		size = 1
	}
	if fanout < 1 {
		fanout = 1
	}
	return Tree{size: size, fanout: fanout}
}

// Size returns the number of ranks in the tree.
func (t Tree) Size() int { return t.size }

// Fanout returns the tree's fan-out.
func (t Tree) Fanout() int { return t.fanout }

// Parent returns rank r's parent, or -1 for the root.
func (t Tree) Parent(r int) int {
	if r == 0 {
		return -1
	}
	return (r - 1) / t.fanout
}

// Children returns rank r's children in ascending rank order.
func (t Tree) Children(r int) []int {
	var out []int
	for c := t.fanout*r + 1; c <= t.fanout*r+t.fanout && c < t.size; c++ {
		out = append(out, c)
	}
	return out
}

// Preorder returns rank r's subtree in preorder (r first, then each
// child's subtree in ascending child order). This is the canonical
// per-link message order of the gather phase: a node ships its
// subtree's reduced slices to its parent in exactly this sequence, so
// sender and receiver agree without negotiation.
func (t Tree) Preorder(r int) []int {
	out := []int{r}
	for _, c := range t.Children(r) {
		out = append(out, t.Preorder(c)...)
	}
	return out
}

// Depth returns the depth of the deepest rank (root = 0) — the number
// of sequential hops a gather or broadcast takes.
func (t Tree) Depth() int {
	depth, levelCap, total := 0, 1, 1
	for total < t.size {
		levelCap *= t.fanout
		total += levelCap
		depth++
	}
	return depth
}
