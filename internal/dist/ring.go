// Ring gradient exchange (Options.Topology == TopologyRing): a
// bandwidth-shaped alternative to the reduction tree in which every rank
// talks only to its two neighbors — (rank−1) mod k feeds it, it feeds
// (rank+1) mod k — the FireCaffe-style layout for clusters whose links,
// not latencies, are the bottleneck.
//
// # Why this ring is a relay ring, not a partial-sum ring
//
// The textbook ring reduce-scatter accumulates partial sums as a chunk
// travels: chunk c is summed in ring order c+1, c+2, …, c — a different
// addition order for every chunk, and a different order than the tree
// path's. Floating-point addition is not associative, so that ring
// would produce different bits than the tree, breaking the repo-wide
// determinism contract (every topology, transport and fan-out must
// produce identical snapshots). Compressed wires make it worse: a
// partial sum would have to be re-quantized at every hop, compounding
// error and entangling it with ring position.
//
// This ring therefore relays *contributions*, not partials: an encoded
// gradient chunk enters the ring at its origin and travels unchanged,
// hop by hop, until it reaches the chunk's owner, who stages it. Once
// the owner holds all k−1 peer contributions it folds them — own
// gradient included — in ascending rank order 0..k−1 and scales by 1/k:
// byte-for-byte the fold of the tree path and of replica.Trainer (the
// OrderedSlices discipline). Under f32 the relayed bytes are the raw
// gradient slices the tree path would have delivered point-to-point, so
// the f32 ring is bit-identical to the tree at every k. Under f16/int8
// the owner decodes exactly the frame the origin encoded (relays never
// touch payload bits), so tree and ring agree under every codec.
//
// # The deterministic relay stream
//
// Data-plane links are strict-FIFO: a receiver must ask for frames in
// exactly the order they were sent. Each rank sends, per parameter in
// canonical order, its own k−1 contributions in owner-distance order
// d=1..k−1, then forwards everything it consumed that it does not own,
// in consumption order. Unrolling that recurrence, the stream arriving
// at any rank r is, in order:
//
//	for a = 1..k−1:            // how far behind r the origin sits
//	  origin o = (r−a) mod k
//	  for each parameter (canonical order):
//	    for d = a..k−1:        // owner distance from the origin
//	      contribution (origin o, owner (o+d) mod k)
//
// The d==a item is owned by r (staged); the rest are relayed forward,
// where they appear to the successor as its a+1 block — the closed form
// is self-reproducing, so every rank can compute the exact sequence of
// tags to expect with no negotiation. Origins arrive in descending rank
// order (r−1, r−2, …), which is why contributions are staged rather
// than folded on arrival: the fold must run in ascending rank order.
//
// # All-gather and what stays on the tree
//
// After the fold, each reduced chunk circulates the ring in raw f32
// (reduced gradient is master state — compressing it would perturb the
// solver update): each rank sends its own chunks, then re-forwards each
// received chunk k−2 times total around the ring. After k−1 hops every
// rank — the root included — holds the full reduced gradient, and the
// root's solver update reads exactly the bytes the tree gather would
// have delivered. Weight broadcast, weight sync and loss aggregation
// stay on the tree/direct routes in both topologies: they are
// latency-bound master-state traffic.

package dist

import (
	"fmt"

	"coarsegrain/internal/par"
	"coarsegrain/internal/transport"
)

// ringConsume drains this iteration's relay stream from the ring
// predecessor: contributions owned here are decoded into the staging
// buffers, everything else is forwarded bit-unchanged to the successor.
// Must run after this rank's own contributions have been sent (the
// scatter hook) and before the fold.
func (nd *Node) ringConsume() error {
	start := nd.now()
	params := nd.network.Params()
	k := nd.size
	relayed := 0
	for a := 1; a < k; a++ {
		o := (nd.rank - a + k) % k
		for _, pi := range nd.paramOrder {
			count := params[pi].Count()
			for d := a; d < k; d++ {
				w := (o + d) % k
				lo, hi := par.Chunk(count, k, w)
				if lo == hi {
					continue
				}
				n := hi - lo
				wl := n
				if nd.codec != nil {
					wl = nd.codec.WireLen(n)
				}
				wire := nd.wireRecvBuf[:wl]
				tag := nd.tag(transport.KindRing, pi, ringOrigin(o, w))
				if err := nd.recv(nd.ringPrev, tag, wire); err != nil {
					return fmt.Errorf("dist: ring contribution to param %d (origin %d, owner %d): %w", pi, o, w, err)
				}
				if w == nd.rank {
					dst := nd.stageFor(pi, o)
					if nd.codec != nil {
						nd.decodeInto(dst, wire, nd.ringPrev)
					} else {
						copy(dst, wire)
					}
					continue
				}
				if err := nd.sendRetry(nd.ringNext, tag, wire); err != nil {
					return err
				}
				relayed += wl
			}
		}
	}
	nd.span("relay", nd.ringPrev, relayed, start)
	return nil
}

// ringAllGather circulates every reduced chunk around the ring in raw
// f32: own chunks first (per parameter, canonical order), then each
// received chunk is written into the gradient buffer and re-forwarded
// until it has visited every rank. The stream mirrors ringConsume's
// closed form with one item per (origin, parameter); KindGather tags
// carry the chunk owner, so the frames can never alias the relay
// stream's.
func (nd *Node) ringAllGather() error {
	start := nd.now()
	params := nd.network.Params()
	k := nd.size
	moved := 0
	for _, pi := range nd.paramOrder {
		p := params[pi]
		diff := p.Diff()
		lo, hi := par.Chunk(p.Count(), k, nd.rank)
		if lo == hi {
			continue
		}
		tag := nd.tag(transport.KindGather, pi, nd.rank)
		if err := nd.sendRetry(nd.ringNext, tag, diff[lo:hi]); err != nil {
			return err
		}
		moved += hi - lo
	}
	for a := 1; a < k; a++ {
		o := (nd.rank - a + k) % k
		for _, pi := range nd.paramOrder {
			p := params[pi]
			diff := p.Diff()
			lo, hi := par.Chunk(p.Count(), k, o)
			if lo == hi {
				continue
			}
			tag := nd.tag(transport.KindGather, pi, o)
			if err := nd.recv(nd.ringPrev, tag, diff[lo:hi]); err != nil {
				return fmt.Errorf("dist: ring all-gather of param %d chunk %d: %w", pi, o, err)
			}
			if a < k-1 {
				if err := nd.sendRetry(nd.ringNext, tag, diff[lo:hi]); err != nil {
					return err
				}
			}
			moved += hi - lo
		}
	}
	nd.span("gather", nd.ringPrev, moved, start)
	return nil
}
