// Package dist is the distributed data-parallel trainer: k full model
// replicas — one per transport rank, in one process or many — train in
// lockstep on disjoint shards of every global batch, and a deterministic
// gradient reduction keeps the k-replica run bit-identical to the
// single-process replica.Trainer at every replica count, tree shape and
// transport (DISTRIBUTED.md). It generalizes internal/replica across
// process boundaries the same way replica generalized the coarse engine
// across devices.
//
// # The reduction and its determinism argument
//
// Floating-point addition is not associative, so "sum the gradients" is
// only reproducible if every element is accumulated in a fixed order.
// The single-process baselines already enforce one: replica.Trainer
// folds replica gradients into the master in ascending rank order, and
// par.Pool.OrderedSlices showed the fold can be element-sliced across
// workers without changing a bit, because each element still sees
// ranks 0,1,…,k-1 in order. Package dist reuses exactly that shape as
// an ordered reduce-scatter: every parameter's element space is sliced
// across ranks with par.Chunk, each slice owner receives the k-1 peer
// contributions for its slice and folds them — own gradient included —
// in ascending rank order, then scales by 1/k. All arithmetic happens
// at owners; the reduction Tree then only moves finished bytes (reduced
// slices up to the root, updated weights down), so the tree's fan-out
// affects latency, never values. The root applies the solver update to
// the full assembled gradient and broadcasts the new weights bitwise.
//
// Consequences, asserted by this package's tests: a k-replica dist run
// is bit-identical to replica.Trainer with k replicas (same fold, same
// scale, same update); a 1-replica dist run is bit-identical to plain
// solver.Step; and Local vs TCP vs any fan-out vs flaky-with-retry all
// produce the same snapshots to the last bit.
//
// # Communication/compute overlap
//
// Backward visits layers in reverse order, and a layer's parameter
// gradients are final as soon as its backward completes. A
// net.SetBackwardLayerHook fires right there, on the driving goroutine,
// and ships the finished parameters' gradient slices to their owners
// while the engine is already computing layer k-1 — transport sends are
// asynchronous, so the scatter rides inside the backward wall time
// instead of after it. PhaseComm trace spans make the overlap visible
// next to the backward spans (OBSERVABILITY.md).
//
// # Fault handling
//
// Sends that fail with transport.ErrTransient (a flaky link, an
// injected drop) are retried with bounded exponential backoff; the
// receiver's dedupe makes retries and duplicates exactly-once, so a
// seeded transport.Flaky run converges to the bit-identical result or —
// when the fault budget exceeds the retry budget — fails loudly, never
// silently diverges. This is the guard/faultinject philosophy
// (ROBUSTNESS.md) extended to the network.
//
// Failures beyond a transient frame — a crashed rank, a hang, a
// partition — surface as transport.ErrPeerDown (or unwind via
// transport.Interrupt) and are handled one level up: the elastic
// supervisor in elastic.go detects them with heartbeats, fences the
// group at the last completed iteration, and re-forms a smaller (or,
// on rejoin, larger) membership that resumes from the fenced
// checkpoint. Options.Epoch and Options.StartIter exist so a re-formed
// Node is indistinguishable from one freshly built for a clean run
// resumed at that iteration — which is the whole determinism argument
// for degraded continuation.
package dist

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"coarsegrain/internal/net"
	"coarsegrain/internal/par"
	"coarsegrain/internal/solver"
	"coarsegrain/internal/trace"
	"coarsegrain/internal/transport"
)

// RetryConfig bounds the transient-send retry loop.
type RetryConfig struct {
	// MaxAttempts is the total number of Send attempts per message
	// (minimum 1). With the default 16 and a 20% injected drop rate, the
	// chance of exhausting the budget on one message is ~3e-12.
	MaxAttempts int
	// BaseBackoff is the sleep after the first failed attempt; it
	// doubles per retry up to MaxBackoff.
	BaseBackoff, MaxBackoff time.Duration
}

// DefaultRetry returns the retry policy used when Options.Retry is zero.
func DefaultRetry() RetryConfig {
	return RetryConfig{MaxAttempts: 16, BaseBackoff: 20 * time.Microsecond, MaxBackoff: 2 * time.Millisecond}
}

// Gradient-exchange topologies (Options.Topology).
const (
	// TopologyTree routes gradient contributions point-to-point to their
	// slice owners and moves reduced slices through the heap-numbered
	// reduction tree — the default, lowest-latency shape.
	TopologyTree = "tree"
	// TopologyRing relays gradient contributions hop-by-hop around a
	// ring (reduce-scatter), then circulates the reduced chunks the same
	// way (all-gather): every rank talks only to its two neighbors, the
	// shape FireCaffe-style bandwidth-bound clusters want. The f32 ring
	// is bit-identical to the tree because the fold at each chunk owner
	// is the same rank-ordered fold — the ring changes who carries the
	// bytes, never the arithmetic (DISTRIBUTED.md §9).
	TopologyRing = "ring"
)

// Options configures a Node.
type Options struct {
	// Fanout is the reduction tree's fan-out (default 2).
	Fanout int
	// NoOverlap disables the backward-hook scatter: all gradient slices
	// ship only after the full backward pass. Values are identical
	// either way (the EXPERIMENTS.md ablation flips this).
	NoOverlap bool
	// Retry bounds transient-send retries; zero value = DefaultRetry.
	Retry RetryConfig
	// Epoch is the membership epoch stamped into every tag (0 for a
	// group that has never fenced). The elastic supervisor bumps it at
	// each fence so stale frames from an abandoned membership can never
	// alias the new one's.
	Epoch int
	// StartIter is the iteration numbering starts at (0 for a fresh
	// run). A node resuming from a fenced checkpoint at iteration F is
	// built with StartIter F so its tags, and therefore its protocol
	// state, match a clean run resumed there.
	StartIter int
	// Topology selects the gradient-exchange route: TopologyTree
	// (default) or TopologyRing. Every rank of a group must agree, like
	// Fanout.
	Topology string
	// GradWire names the gradient wire format: "f32" (default,
	// identity), "f16" (packed binary16) or "int8" (grouped max-abs
	// quantization) — see transport.CodecByName. Lossy formats carry a
	// per-rank error-feedback residual so the quantization error feeds
	// back into the next iteration's gradient instead of accumulating as
	// bias. Only gradient contributions are encoded; reduced slices,
	// losses and weights always cross the wire as raw f32.
	GradWire string
}

func (o Options) withDefaults() Options {
	if o.Fanout < 1 {
		o.Fanout = 2
	}
	if o.Retry.MaxAttempts < 1 {
		o.Retry = DefaultRetry()
	}
	if o.Retry.BaseBackoff <= 0 {
		o.Retry.BaseBackoff = 20 * time.Microsecond
	}
	if o.Retry.MaxBackoff < o.Retry.BaseBackoff {
		o.Retry.MaxBackoff = o.Retry.BaseBackoff
	}
	if o.Topology == "" {
		o.Topology = TopologyTree
	}
	return o
}

// Node is one rank of a distributed training group. The root (rank 0)
// owns the solver and the authoritative weights; workers compute shard
// gradients and route bytes. Every rank calls Step with the same
// iteration count — the protocol is lockstep.
type Node struct {
	tr      transport.Transport
	network *net.Net
	sol     *solver.Solver // root only
	tree    Tree
	rank    int
	size    int
	opts    Options
	tracer  *trace.Tracer

	// paramOrder is the order gradients become final during backward
	// (net.BackwardParamOrder) — the canonical scatter/fold/gather
	// sequence every rank iterates identically.
	paramOrder []int
	scale      float32
	epoch      int
	iter       int

	// waiting is the rank this node is currently blocked on in a
	// data-plane Recv (-1 when not blocked). The elastic supervisor's
	// straggler detection reads it — and ships it in heartbeat replies —
	// to follow the wait chain to the rank that is actually slow.
	waiting atomic.Int64

	parent   int
	children []int
	pre      []int   // own subtree, preorder
	childPre [][]int // each child's subtree, preorder

	// sent tracks which parameters this iteration's hook has already
	// scattered; accBuf/recvBuf are reusable max-chunk scratch slices.
	sent    []bool
	accBuf  []float32
	recvBuf []float32
	hookErr error

	// codec is the gradient wire format, nil for f32: the identity
	// format takes the pre-codec fast path so the default configuration
	// stays bit-for-bit and allocation-for-allocation what it always
	// was. When set, corrBuf/decBuf/wireBuf/wireRecvBuf are the
	// preallocated encode/decode scratch and residual holds the
	// error-feedback state: residual[pi][i] is the quantization error of
	// parameter pi's element i from the last time it was encoded, added
	// back into the gradient before the next encode. Residuals start at
	// zero and reset whenever a Node is rebuilt (resume, fence, rejoin)
	// — exactly the state a clean run resumed at that iteration would
	// have, which keeps elastic recovery bit-identical under lossy
	// codecs too.
	codec       transport.Codec
	residual    [][]float32
	corrBuf     []float32
	decBuf      []float32
	wireBuf     []float32
	wireRecvBuf []float32

	// Ring-topology state: the two neighbors, and stage[pi] — the
	// decoded peer contributions to this rank's slice of parameter pi,
	// one slot per origin rank, held until the whole relay stream has
	// been consumed so the fold can run in ascending rank order
	// regardless of arrival order (the OrderedSlices discipline).
	ringNext int
	ringPrev int
	stage    [][]float32
}

// NewRoot creates the coordinator node (transport rank 0): it owns the
// solver stepping n's weights, assembles the reduced global gradient
// and broadcasts updates. n must be built exactly like every worker's
// net (same seed, same architecture) on shard 0 of the global batch.
func NewRoot(t transport.Transport, n *net.Net, cfg solver.Config, opts Options) (*Node, error) {
	if t.Rank() != 0 {
		return nil, fmt.Errorf("dist: root must hold transport rank 0, got %d", t.Rank())
	}
	s, err := solver.New(cfg, n)
	if err != nil {
		return nil, err
	}
	return newNode(t, n, s, opts)
}

// NewWorker creates a worker node (transport rank ≥ 1): it computes its
// shard's gradients, participates in the ordered reduce-scatter, routes
// tree traffic and receives weight broadcasts. Workers have no solver.
func NewWorker(t transport.Transport, n *net.Net, opts Options) (*Node, error) {
	if t.Rank() == 0 {
		return nil, fmt.Errorf("dist: transport rank 0 is the root; use NewRoot")
	}
	return newNode(t, n, nil, opts)
}

func newNode(t transport.Transport, n *net.Net, s *solver.Solver, opts Options) (*Node, error) {
	opts = opts.withDefaults()
	size := t.Size()
	if size < 1 {
		return nil, fmt.Errorf("dist: transport group size %d", size)
	}
	if opts.Epoch < 0 || opts.Epoch > transport.MaxEpoch {
		return nil, fmt.Errorf("dist: membership epoch %d out of range [0,%d]", opts.Epoch, transport.MaxEpoch)
	}
	if opts.StartIter < 0 || opts.StartIter > transport.MaxIter {
		return nil, fmt.Errorf("dist: start iteration %d out of range [0,%d]", opts.StartIter, transport.MaxIter)
	}
	params := n.Params()
	if len(params) == 0 {
		return nil, fmt.Errorf("dist: net has no parameters")
	}
	if len(params) >= 1<<14 {
		return nil, fmt.Errorf("dist: %d parameters exceed the tag's param field", len(params))
	}
	tree := NewTree(size, opts.Fanout)
	nd := &Node{
		tr: t, network: n, sol: s, tree: tree, rank: t.Rank(), size: size,
		opts: opts, tracer: n.Tracer(),
		paramOrder: n.BackwardParamOrder(),
		scale:      1 / float32(size),
		epoch:      opts.Epoch,
		iter:       opts.StartIter,
		parent:     tree.Parent(t.Rank()),
		children:   tree.Children(t.Rank()),
		pre:        tree.Preorder(t.Rank()),
		sent:       make([]bool, len(params)),
	}
	nd.waiting.Store(-1)
	for _, c := range nd.children {
		nd.childPre = append(nd.childPre, tree.Preorder(c))
	}
	maxChunk := 0
	for _, p := range params {
		if lo, hi := par.Chunk(p.Count(), size, 0); hi-lo > maxChunk {
			maxChunk = hi - lo
		}
	}
	nd.accBuf = make([]float32, maxChunk)
	nd.recvBuf = make([]float32, maxChunk)

	switch opts.Topology {
	case TopologyTree:
	case TopologyRing:
		// KindRing tags pack origin<<8|owner into the 16-bit origin
		// field, so a relayed frame stays distinguishable from the
		// relaying rank's own contributions on the same link.
		if size > 256 {
			return nil, fmt.Errorf("dist: ring topology supports at most 256 ranks, got %d", size)
		}
	default:
		return nil, fmt.Errorf("dist: unknown topology %q (want %q or %q)", opts.Topology, TopologyTree, TopologyRing)
	}
	codec, err := transport.CodecByName(opts.GradWire)
	if err != nil {
		return nil, fmt.Errorf("dist: %w", err)
	}
	if _, identity := codec.(transport.F32Codec); !identity {
		nd.codec = codec
		nd.residual = make([][]float32, len(params))
		for pi, p := range params {
			nd.residual[pi] = make([]float32, p.Count())
		}
		nd.corrBuf = make([]float32, maxChunk)
		nd.decBuf = make([]float32, maxChunk)
		nd.wireBuf = make([]float32, codec.WireLen(maxChunk))
		nd.wireRecvBuf = make([]float32, codec.WireLen(maxChunk))
	}
	if opts.Topology == TopologyRing && size > 1 {
		nd.ringNext = (nd.rank + 1) % size
		nd.ringPrev = (nd.rank - 1 + size) % size
		if nd.wireRecvBuf == nil {
			nd.wireRecvBuf = make([]float32, maxChunk) // f32 ring relays raw chunks
		}
		nd.stage = make([][]float32, len(params))
		for pi, p := range params {
			if lo, hi := par.Chunk(p.Count(), size, nd.rank); hi > lo {
				nd.stage[pi] = make([]float32, size*(hi-lo))
			}
		}
	}
	return nd, nil
}

// stageFor returns the staging slot for origin's contribution to this
// rank's slice of parameter pi.
func (nd *Node) stageFor(pi, origin int) []float32 {
	n := len(nd.stage[pi]) / nd.size
	return nd.stage[pi][origin*n : (origin+1)*n]
}

// ringOrigin packs a ring frame's (origin, owner) pair into the tag's
// 16-bit origin field.
func ringOrigin(origin, owner int) int { return origin<<8 | owner }

// Rank returns this node's rank.
func (nd *Node) Rank() int { return nd.rank }

// Size returns the group size.
func (nd *Node) Size() int { return nd.size }

// Tree returns the reduction topology.
func (nd *Node) Tree() Tree { return nd.tree }

// Iter returns the completed iteration count.
func (nd *Node) Iter() int { return nd.iter }

// Epoch returns the membership epoch this node's tags carry.
func (nd *Node) Epoch() int { return nd.epoch }

// WaitingOn returns the rank this node is currently blocked on in a
// data-plane Recv, or -1. Safe to call from another goroutine.
func (nd *Node) WaitingOn() int { return int(nd.waiting.Load()) }

// tag packs a label for the current (epoch, iteration).
func (nd *Node) tag(k transport.Kind, param, origin int) transport.Tag {
	return transport.MakeTagE(k, nd.epoch, nd.iter, param, origin)
}

// recv wraps the transport Recv with waiting-rank bookkeeping so the
// elastic supervisor can see who the lockstep protocol is blocked on.
func (nd *Node) recv(from int, tag transport.Tag, buf []float32) error {
	nd.waiting.Store(int64(from))
	err := nd.tr.Recv(from, tag, buf)
	nd.waiting.Store(-1)
	return err
}

// Net returns the node's network.
func (nd *Node) Net() *net.Net { return nd.network }

// Solver returns the root's solver (nil on workers) — the handle
// dnncluster snapshots through, exactly like dnntrain.
func (nd *Node) Solver() *solver.Solver { return nd.sol }

// Step runs iters lockstep iterations. The root returns the global
// losses (the rank-ordered mean of replica losses, matching
// replica.Trainer); workers return their local shard losses. Every
// rank of the group must call Step with the same iters. A transport
// error aborts mid-run with the losses completed so far — fail-loud,
// never silently desynchronized.
func (nd *Node) Step(iters int) ([]float64, error) {
	losses := make([]float64, 0, iters)
	for i := 0; i < iters; i++ {
		loss, err := nd.step()
		if err != nil {
			return losses, err
		}
		losses = append(losses, loss)
	}
	return losses, nil
}

// step runs one lockstep iteration: scatter (overlapped with backward),
// fold, loss reduce, tree gather, root update, tree broadcast.
func (nd *Node) step() (float64, error) {
	nd.network.ZeroParamDiffs()

	// A single-rank group is plain solver stepping: no communication,
	// no 1/k scaling — bit-identical to solver.Step by construction.
	if nd.size == 1 {
		loss := nd.network.ForwardBackward()
		nd.sol.UpdateFromGradients()
		nd.iter++
		return loss, nil
	}

	// Compute + scatter. The hook fires after each layer's backward
	// with its finalized parameter range; slices ship to their owners
	// while the engine is still on earlier layers.
	for i := range nd.sent {
		nd.sent[i] = false
	}
	nd.hookErr = nil
	if !nd.opts.NoOverlap {
		nd.network.SetBackwardLayerHook(func(lo, hi int) {
			if nd.hookErr != nil {
				return
			}
			for p := lo; p < hi; p++ {
				if err := nd.scatterParam(p); err != nil {
					nd.hookErr = err
					return
				}
			}
		})
	}
	loss := nd.network.ForwardBackward()
	nd.network.SetBackwardLayerHook(nil)
	if nd.hookErr != nil {
		return 0, nd.hookErr
	}
	// Whatever the hook did not cover (all of it under NoOverlap) ships
	// now, in the same canonical order.
	for _, p := range nd.paramOrder {
		if !nd.sent[p] {
			if err := nd.scatterParam(p); err != nil {
				return 0, err
			}
		}
	}

	// Reduce: own every slice this rank is responsible for. The ring
	// path first drains the relay stream (staging what it owns,
	// forwarding the rest); both paths end in the same rank-ordered
	// fold.
	if nd.opts.Topology == TopologyRing {
		if err := nd.ringConsume(); err != nil {
			return 0, err
		}
	}

	// Workers report their shard loss to the root (as raw float64 bits,
	// so the global mean is computed from exact values). This must come
	// after ringConsume: data links are strict FIFO, and rank 0's ring
	// predecessor shares its loss link with the relay stream — a loss
	// frame sent before the relays would sit mid-stream and trip the
	// root's tag discipline. (Under the tree the link carries gradient
	// slices, all sent during scatter above, so the order is the same
	// either way.)
	if nd.rank != 0 {
		lossBits := encodeF64(loss)
		tag := nd.tag(transport.KindLoss, 0, nd.rank)
		if err := nd.sendRetry(0, tag, lossBits[:]); err != nil {
			return 0, err
		}
	}
	foldStart := nd.now()
	folded := 0
	for _, p := range nd.paramOrder {
		n, err := nd.foldParam(p)
		if err != nil {
			return 0, err
		}
		folded += n
	}
	nd.span("fold", -1, folded, foldStart)

	// Global loss at the root: the rank-ordered sum replica.Trainer
	// computes, divided by k.
	globalLoss := loss
	if nd.rank == 0 {
		sum := loss
		var bits [2]float32
		for r := 1; r < nd.size; r++ {
			tag := nd.tag(transport.KindLoss, 0, r)
			if err := nd.recv(r, tag, bits[:]); err != nil {
				return 0, fmt.Errorf("dist: loss from rank %d: %w", r, err)
			}
			sum += decodeF64(bits)
		}
		globalLoss = sum / float64(nd.size)
	}

	// Route the reduced slices — up the tree to the root, or all the way
	// around the ring — update at the root, broadcast the new weights
	// down the tree (weights are master state; they always take the
	// lowest-latency route).
	if nd.opts.Topology == TopologyRing {
		if err := nd.ringAllGather(); err != nil {
			return 0, err
		}
	} else if err := nd.gather(); err != nil {
		return 0, err
	}
	if nd.rank == 0 {
		nd.sol.UpdateFromGradients()
	}
	if err := nd.bcast(); err != nil {
		return 0, err
	}
	nd.iter++
	return globalLoss, nil
}

// scatterParam ships parameter pi's gradient slices toward their owners
// (asynchronously; the transport queues them) — point-to-point under the
// tree topology, to the ring successor under the ring. Safe to call from
// the backward hook: it runs on the driving goroutine between engine
// calls, so the trace single-writer contract holds.
func (nd *Node) scatterParam(pi int) error {
	nd.sent[pi] = true
	p := nd.network.Params()[pi]
	diff := p.Diff()
	start := nd.now()
	shipped := 0
	if nd.opts.Topology == TopologyRing {
		// Own contributions enter the ring in owner-distance order
		// 1..k-1; ringConsume on the successor expects exactly this
		// sequence (it is block b=0 of the link's relay stream).
		for d := 1; d < nd.size; d++ {
			o := (nd.rank + d) % nd.size
			lo, hi := par.Chunk(p.Count(), nd.size, o)
			if lo == hi {
				continue
			}
			payload := diff[lo:hi]
			if nd.codec != nil {
				payload = nd.encodeChunk(pi, lo, hi, diff)
			}
			tag := nd.tag(transport.KindRing, pi, ringOrigin(nd.rank, o))
			if err := nd.sendRetry(nd.ringNext, tag, payload); err != nil {
				return err
			}
			shipped += hi - lo
		}
		nd.span("scatter", nd.ringNext, shipped, start)
		return nil
	}
	for o := 0; o < nd.size; o++ {
		if o == nd.rank {
			continue
		}
		lo, hi := par.Chunk(p.Count(), nd.size, o)
		if lo == hi {
			continue
		}
		payload := diff[lo:hi]
		if nd.codec != nil {
			payload = nd.encodeChunk(pi, lo, hi, diff)
		}
		tag := nd.tag(transport.KindGrad, pi, nd.rank)
		if err := nd.sendRetry(o, tag, payload); err != nil {
			return err
		}
		shipped += hi - lo
	}
	nd.span("scatter", -1, shipped, start)
	return nil
}

// encodeChunk applies error feedback and encodes parameter pi's
// [lo:hi) gradient slice into the preallocated wire buffer, returning
// the encoded words. The residual update is the textbook EF step:
// corrected = gradient + residual; wire = encode(corrected);
// residual' = corrected − decode(wire). What the owner folds is
// decode(wire), so the error this rank failed to transmit this
// iteration is exactly what it adds back next iteration. The buffer is
// valid until the next encodeChunk call — callers hand it straight to
// the transport, which copies on enqueue.
func (nd *Node) encodeChunk(pi, lo, hi int, diff []float32) []float32 {
	start := nd.now()
	n := hi - lo
	res := nd.residual[pi][lo:hi]
	corr := nd.corrBuf[:n]
	for i := 0; i < n; i++ {
		corr[i] = diff[lo+i] + res[i]
	}
	wire := nd.wireBuf[:nd.codec.WireLen(n)]
	nd.codec.Encode(wire, corr)
	dec := nd.decBuf[:n]
	nd.codec.Decode(dec, wire)
	for i := 0; i < n; i++ {
		res[i] = corr[i] - dec[i]
	}
	nd.span("encode", -1, n, start)
	return wire
}

// decodeInto decodes an encoded gradient frame into dst, recording the
// decode cost as a PhaseComm sub-span beside the wire time it bought.
func (nd *Node) decodeInto(dst, wire []float32, from int) {
	start := nd.now()
	nd.codec.Decode(dst, wire)
	nd.span("decode", from, len(dst), start)
}

// foldParam reduces this rank's slice of parameter pi: contributions
// from ranks 0..size-1 are folded in ascending rank order — the exact
// per-element accumulation order of replica.Trainer's combine and of
// par.Pool.OrderedSlices — then scaled by 1/k, in place. Returns the
// slice's element count.
func (nd *Node) foldParam(pi int) (int, error) {
	p := nd.network.Params()[pi]
	lo, hi := par.Chunk(p.Count(), nd.size, nd.rank)
	if lo == hi {
		return 0, nil
	}
	n := hi - lo
	acc := nd.accBuf[:n]
	tmp := nd.recvBuf[:n]
	diff := p.Diff()
	for r := 0; r < nd.size; r++ {
		src := tmp
		switch {
		case r == nd.rank:
			// The own contribution never crosses the wire and is folded
			// uncompressed under every codec — identically in tree and
			// ring mode, so the topology/codec pair can't skew whose
			// gradient gets quantized.
			src = diff[lo:hi]
		case nd.opts.Topology == TopologyRing:
			src = nd.stageFor(pi, r) // decoded by ringConsume
		case nd.codec != nil:
			wire := nd.wireRecvBuf[:nd.codec.WireLen(n)]
			tag := nd.tag(transport.KindGrad, pi, r)
			if err := nd.recv(r, tag, wire); err != nil {
				return 0, fmt.Errorf("dist: gradient slice of param %d from rank %d: %w", pi, r, err)
			}
			nd.decodeInto(tmp, wire, r)
		default:
			tag := nd.tag(transport.KindGrad, pi, r)
			if err := nd.recv(r, tag, tmp); err != nil {
				return 0, fmt.Errorf("dist: gradient slice of param %d from rank %d: %w", pi, r, err)
			}
		}
		if r == 0 {
			copy(acc, src)
		} else {
			for i, v := range src {
				acc[i] += v
			}
		}
	}
	for i := range acc {
		acc[i] *= nd.scale
	}
	copy(diff[lo:hi], acc)
	return n, nil
}

// gather routes every reduced slice to the root through the tree: for
// each parameter (canonical order), a node receives its children's
// subtree slices into the gradient buffer, then forwards its whole
// subtree — own slice first, children in preorder — to its parent.
// Pure byte movement: no arithmetic, so tree shape cannot change bits.
func (nd *Node) gather() error {
	start := nd.now()
	moved := 0
	for _, pi := range nd.paramOrder {
		p := nd.network.Params()[pi]
		diff := p.Diff()
		for ci, c := range nd.children {
			for _, s := range nd.childPre[ci] {
				lo, hi := par.Chunk(p.Count(), nd.size, s)
				if lo == hi {
					continue
				}
				tag := nd.tag(transport.KindGather, pi, s)
				if err := nd.recv(c, tag, diff[lo:hi]); err != nil {
					return fmt.Errorf("dist: gather of param %d slice %d from child %d: %w", pi, s, c, err)
				}
				moved += hi - lo
			}
		}
		if nd.parent >= 0 {
			for _, s := range nd.pre {
				lo, hi := par.Chunk(p.Count(), nd.size, s)
				if lo == hi {
					continue
				}
				tag := nd.tag(transport.KindGather, pi, s)
				if err := nd.sendRetry(nd.parent, tag, diff[lo:hi]); err != nil {
					return err
				}
				moved += hi - lo
			}
		}
	}
	nd.span("gather", nd.parent, moved, start)
	return nil
}

// bcast routes the root's updated weights down the tree: each node
// receives every parameter tensor from its parent (bitwise copies of
// the master weights) and forwards it to its children.
func (nd *Node) bcast() error {
	start := nd.now()
	moved := 0
	for pi, p := range nd.network.Params() {
		data := p.Data()
		tag := nd.tag(transport.KindBcast, pi, 0)
		if nd.parent >= 0 {
			if err := nd.recv(nd.parent, tag, data); err != nil {
				return fmt.Errorf("dist: broadcast of param %d from rank %d: %w", pi, nd.parent, err)
			}
			moved += len(data)
		}
		for _, c := range nd.children {
			if err := nd.sendRetry(c, tag, data); err != nil {
				return err
			}
			moved += len(data)
		}
	}
	nd.span("bcast", nd.parent, moved, start)
	return nil
}

// SyncWeights re-seeds the whole group with the root's weights: every
// parameter tensor flows down the reduction tree as a bitwise copy,
// exactly like bcast but under KindSync and outside any iteration's
// lockstep. Every member must call it at the same (epoch, iteration) —
// the elastic supervisor does so right after a fence or rejoin, and a
// resumed run does so before its first step, which is what makes a
// re-formed group's weights identical to a clean run's at that point.
func (nd *Node) SyncWeights() error {
	if nd.size == 1 {
		return nil
	}
	start := nd.now()
	moved := 0
	for pi, p := range nd.network.Params() {
		data := p.Data()
		tag := nd.tag(transport.KindSync, pi, 0)
		if nd.parent >= 0 {
			if err := nd.recv(nd.parent, tag, data); err != nil {
				return fmt.Errorf("dist: weight sync of param %d from rank %d: %w", pi, nd.parent, err)
			}
			moved += len(data)
		}
		for _, c := range nd.children {
			if err := nd.sendRetry(c, tag, data); err != nil {
				return err
			}
			moved += len(data)
		}
	}
	nd.span("sync", nd.parent, moved, start)
	return nil
}

// sendRetry sends with bounded exponential backoff on transient
// failures; any other error is fatal and returned as-is.
func (nd *Node) sendRetry(to int, tag transport.Tag, payload []float32) error {
	backoff := nd.opts.Retry.BaseBackoff
	var err error
	for attempt := 0; attempt < nd.opts.Retry.MaxAttempts; attempt++ {
		if err = nd.tr.Send(to, tag, payload); err == nil || !errors.Is(err, transport.ErrTransient) {
			return err
		}
		time.Sleep(backoff)
		if backoff *= 2; backoff > nd.opts.Retry.MaxBackoff {
			backoff = nd.opts.Retry.MaxBackoff
		}
	}
	return fmt.Errorf("dist: send %v to rank %d failed after %d attempts: %w",
		tag, to, nd.opts.Retry.MaxAttempts, err)
}

// now reads the tracer clock (zero when tracing is off).
func (nd *Node) now() time.Time {
	if !nd.tracer.Enabled() {
		return time.Time{}
	}
	return time.Now()
}

// span records one PhaseComm driver span. peer is stored in Band (-1
// for many-peer phases), the element count in Hi.
func (nd *Node) span(name string, peer, elems int, start time.Time) {
	if !nd.tracer.Enabled() {
		return
	}
	nd.tracer.Record(trace.Span{
		Name: name, Phase: trace.PhaseComm, Rank: trace.RankDriver, Band: peer,
		Lo: 0, Hi: elems, Start: nd.tracer.Stamp(start), Dur: time.Since(start),
	})
}

// encodeF64 packs a float64's bits into two float32 payload slots
// (high word first) so scalar losses cross the float32 transport
// without rounding; decodeF64 inverts it. Pure bit reinterpretation —
// no floating-point arithmetic touches the values.
func encodeF64(v float64) [2]float32 {
	b := math.Float64bits(v)
	return [2]float32{
		math.Float32frombits(uint32(b >> 32)),
		math.Float32frombits(uint32(b)),
	}
}

func decodeF64(bits [2]float32) float64 {
	b := uint64(math.Float32bits(bits[0]))<<32 | uint64(math.Float32bits(bits[1]))
	return math.Float64frombits(b)
}
