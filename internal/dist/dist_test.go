package dist

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"coarsegrain/internal/data"
	"coarsegrain/internal/layers"
	"coarsegrain/internal/net"
	"coarsegrain/internal/replica"
	"coarsegrain/internal/rng"
	"coarsegrain/internal/solver"
	"coarsegrain/internal/transport"
)

const (
	globalBatch = 16
	sourceLen   = 128
	dataSeed    = 55
	weightSeed  = 77
	testIters   = 8
)

func solverCfg() solver.Config {
	return solver.Config{Type: solver.SGD, BaseLR: 0.01, Momentum: 0.9}
}

// tinySpecsE mirrors the replica package's equivalence-test network:
// conv 4x5x5/2 -> relu -> ip 10 -> loss, seeded weights. Error-returning
// so elastic Rebuild closures (which run off the test goroutine) can
// use it; tinySpecs wraps it for direct test use.
func tinySpecsE(src layers.Source, batch int) ([]net.LayerSpec, error) {
	d, err := layers.NewData("data", src, batch)
	if err != nil {
		return nil, err
	}
	conv, err := layers.NewConvolution("conv1", layers.ConvConfig{
		NumOutput: 4, Kernel: 5, Stride: 2,
		WeightFiller: layers.XavierFiller{}, RNG: rng.New(weightSeed, 1),
	})
	if err != nil {
		return nil, err
	}
	ip, err := layers.NewInnerProduct("ip1", layers.IPConfig{
		NumOutput: 10, WeightFiller: layers.XavierFiller{}, RNG: rng.New(weightSeed, 2),
	})
	if err != nil {
		return nil, err
	}
	return []net.LayerSpec{
		{Layer: d, Tops: []string{"data", "label"}},
		{Layer: conv, Bottoms: []string{"data"}, Tops: []string{"conv1"}},
		{Layer: layers.NewReLU("relu1", 0), Bottoms: []string{"conv1"}, Tops: []string{"relu1"}},
		{Layer: ip, Bottoms: []string{"relu1"}, Tops: []string{"ip1"}},
		{Layer: layers.NewSoftmaxWithLoss("loss"), Bottoms: []string{"ip1", "label"}, Tops: []string{"loss"}},
	}, nil
}

func tinySpecs(t testing.TB, src layers.Source, batch int) []net.LayerSpec {
	t.Helper()
	specs, err := tinySpecsE(src, batch)
	if err != nil {
		t.Fatal(err)
	}
	return specs
}

// shardNetE builds the net rank r of a k-rank group trains: the same
// seeded architecture over shard r of the global batch.
func shardNetE(r, k int) (*net.Net, error) {
	// Round the global batch down to a multiple of k so odd group sizes
	// (k=3 in the ring tests) shard evenly, and trim the source to a
	// whole number of batches; powers of two keep the original batch of
	// 16 over the full source exactly.
	gb := globalBatch - globalBatch%k
	src := data.NewSyntheticMNIST(gb*(sourceLen/globalBatch), dataSeed)
	shard, err := data.NewShard(src, r, k, gb)
	if err != nil {
		return nil, err
	}
	specs, err := tinySpecsE(shard, shard.LocalBatch())
	if err != nil {
		return nil, err
	}
	return net.New(specs, nil)
}

func shardNet(t testing.TB, r, k int) *net.Net {
	t.Helper()
	n, err := shardNetE(r, k)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// runDist trains a k-rank group over the given transports (index =
// rank) for iters iterations and returns the root's final weights and
// global loss trace.
func runDist(t testing.TB, trs []transport.Transport, opts Options, iters int) ([][]float32, []float64) {
	t.Helper()
	k := len(trs)
	var (
		wg      sync.WaitGroup
		weights [][]float32
		losses  []float64
		mu      sync.Mutex
		errs    []error
	)
	for r := 0; r < k; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			n := shardNet(t, r, k)
			var (
				nd  *Node
				err error
			)
			if r == 0 {
				nd, err = NewRoot(trs[r], n, solverCfg(), opts)
			} else {
				nd, err = NewWorker(trs[r], n, opts)
			}
			if err == nil {
				var ls []float64
				ls, err = nd.Step(iters)
				if r == 0 {
					losses = ls
					weights = copyWeights(n)
				}
			}
			if err != nil {
				mu.Lock()
				errs = append(errs, fmt.Errorf("rank %d: %w", r, err))
				mu.Unlock()
			}
			trs[r].Close()
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		t.Fatal(err)
	}
	return weights, losses
}

func copyWeights(n *net.Net) [][]float32 {
	out := make([][]float32, len(n.Params()))
	for i, p := range n.Params() {
		out[i] = append([]float32(nil), p.Data()...)
	}
	return out
}

// requireBitIdentical fails unless two weight sets match to the last bit.
func requireBitIdentical(t testing.TB, label string, got, want [][]float32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d params vs %d", label, len(got), len(want))
	}
	for pi := range want {
		for j := range want[pi] {
			if got[pi][j] != want[pi][j] {
				t.Fatalf("%s: param %d element %d: %v vs %v (not bit-identical)",
					label, pi, j, got[pi][j], want[pi][j])
			}
		}
	}
}

func localGroup(k int) []transport.Transport {
	locals := transport.NewLocalGroup(k)
	out := make([]transport.Transport, k)
	for i, l := range locals {
		out[i] = l
	}
	return out
}

// replicaBaseline runs the single-process replica.Trainer on identical
// shards and returns its final master weights and loss trace — the
// reference every distributed run must match bitwise.
func replicaBaseline(t testing.TB, k, iters int) ([][]float32, []float64) {
	t.Helper()
	reps := make([]*net.Net, k)
	for r := 0; r < k; r++ {
		reps[r] = shardNet(t, r, k)
	}
	tr, err := replica.New(reps, solverCfg())
	if err != nil {
		t.Fatal(err)
	}
	losses := tr.Step(iters)
	return copyWeights(tr.Master()), losses
}

// The tentpole contract: a k-replica distributed run over the in-process
// transport is bit-identical — weights and loss trace — to the
// single-process replica.Trainer, for every k and tree fan-out.
func TestDistMatchesReplicaTrainerBitwise(t *testing.T) {
	for _, k := range []int{2, 4} {
		refW, refL := replicaBaseline(t, k, testIters)
		for _, fanout := range []int{1, 2, 3} {
			t.Run(fmt.Sprintf("k%d_fanout%d", k, fanout), func(t *testing.T) {
				w, l := runDist(t, localGroup(k), Options{Fanout: fanout}, testIters)
				requireBitIdentical(t, "weights", w, refW)
				for i := range refL {
					if l[i] != refL[i] {
						t.Fatalf("loss trace diverged at iter %d: %v vs %v", i, l[i], refL[i])
					}
				}
			})
		}
	}
}

// k=1 degenerates to plain solver stepping: bit-identical to what
// cmd/dnntrain computes on the same seed (no scaling, no communication).
func TestDistSingleRankMatchesSolverBitwise(t *testing.T) {
	src := data.NewSyntheticMNIST(sourceLen, dataSeed)
	single, err := net.New(tinySpecs(t, src, globalBatch), nil)
	if err != nil {
		t.Fatal(err)
	}
	s, err := solver.New(solverCfg(), single)
	if err != nil {
		t.Fatal(err)
	}
	refL := s.Step(testIters)
	refW := copyWeights(single)

	w, l := runDist(t, localGroup(1), Options{}, testIters)
	requireBitIdentical(t, "weights", w, refW)
	for i := range refL {
		if l[i] != refL[i] {
			t.Fatalf("loss trace diverged at iter %d: %v vs %v", i, l[i], refL[i])
		}
	}
}

// The TCP transport changes the fabric, not the values: a k-rank run
// over real loopback sockets matches the in-process run bitwise.
func TestDistTCPMatchesLocalBitwise(t *testing.T) {
	for _, k := range []int{2, 4} {
		t.Run(fmt.Sprintf("k%d", k), func(t *testing.T) {
			refW, refL := runDist(t, localGroup(k), Options{}, testIters)

			coord, err := transport.NewCoordinator("127.0.0.1:0", k)
			if err != nil {
				t.Fatal(err)
			}
			trs := make([]transport.Transport, k)
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				tr, err := coord.Wait()
				if err == nil {
					trs[0] = tr
				}
			}()
			for w := 1; w < k; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					tr, err := transport.DialTCP(coord.Addr())
					if err == nil {
						trs[tr.Rank()] = tr
					}
				}()
			}
			wg.Wait()
			for r, tr := range trs {
				if tr == nil {
					t.Fatalf("rank %d failed to rendezvous", r)
				}
			}
			w, l := runDist(t, trs, Options{}, testIters)
			requireBitIdentical(t, "weights", w, refW)
			for i := range refL {
				if l[i] != refL[i] {
					t.Fatalf("TCP loss trace diverged at iter %d: %v vs %v", i, l[i], refL[i])
				}
			}
		})
	}
}

// Disabling the comm/compute overlap must not change a single bit —
// the overlap is a latency optimization, not a semantic one.
func TestDistOverlapAblationBitwise(t *testing.T) {
	refW, _ := runDist(t, localGroup(4), Options{}, testIters)
	w, _ := runDist(t, localGroup(4), Options{NoOverlap: true}, testIters)
	requireBitIdentical(t, "weights", w, refW)
}

// Seeded drop/duplicate/delay faults on every link: the bounded retry
// plus receiver dedupe must absorb them all and converge to the
// bit-identical result (satellite: flaky-transport coverage, run under
// -race by check.sh).
func TestDistFlakyConvergesBitwise(t *testing.T) {
	refW, refL := runDist(t, localGroup(4), Options{}, testIters)

	locals := transport.NewLocalGroup(4)
	flaky := make([]transport.Transport, 4)
	for i, l := range locals {
		flaky[i] = transport.NewFlaky(l, transport.FlakyConfig{
			DropProb: 0.15, DupProb: 0.15, DelayProb: 0.05, MaxDelay: 200 * time.Microsecond,
		}, uint64(100+i))
	}
	w, l := runDist(t, flaky, Options{}, testIters)
	requireBitIdentical(t, "weights", w, refW)
	for i := range refL {
		if l[i] != refL[i] {
			t.Fatalf("flaky loss trace diverged at iter %d: %v vs %v", i, l[i], refL[i])
		}
	}
}

// When faults exceed the retry budget the run must fail loudly, not
// silently diverge: a 100% drop rate with a tiny budget aborts Step.
func TestDistExhaustedRetriesFailLoudly(t *testing.T) {
	locals := transport.NewLocalGroup(2)
	trs := []transport.Transport{
		transport.NewFlaky(locals[0], transport.FlakyConfig{DropProb: 1}, 1),
		transport.NewFlaky(locals[1], transport.FlakyConfig{DropProb: 1}, 2),
	}
	opts := Options{Retry: RetryConfig{MaxAttempts: 3, BaseBackoff: time.Microsecond, MaxBackoff: time.Microsecond}}
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			n := shardNet(t, r, 2)
			var nd *Node
			var err error
			if r == 0 {
				nd, err = NewRoot(trs[r], n, solverCfg(), opts)
			} else {
				nd, err = NewWorker(trs[r], n, opts)
			}
			if err == nil {
				_, err = nd.Step(1)
			}
			errs[r] = err
			locals[r].Close()
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if !errors.Is(err, transport.ErrTransient) {
			t.Fatalf("rank %d: err = %v, want a retry-exhaustion error wrapping ErrTransient", r, err)
		}
	}
}

func TestNodeValidation(t *testing.T) {
	g := transport.NewLocalGroup(2)
	n0 := shardNet(t, 0, 2)
	if _, err := NewWorker(g[0], n0, Options{}); err == nil {
		t.Fatal("NewWorker accepted rank 0")
	}
	if _, err := NewRoot(g[1], shardNet(t, 1, 2), solverCfg(), Options{}); err == nil {
		t.Fatal("NewRoot accepted rank 1")
	}
	nd, err := NewRoot(g[0], n0, solverCfg(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if nd.Rank() != 0 || nd.Size() != 2 || nd.Solver() == nil || nd.Net() != n0 {
		t.Fatalf("root accessors wrong: %+v", nd)
	}
	if nd.Tree().Fanout() != 2 {
		t.Fatalf("default fanout %d", nd.Tree().Fanout())
	}
}

func TestLossBitsRoundTrip(t *testing.T) {
	for _, v := range []float64{0, 1, -1, 2.3892185e-7, 1e300, -4.56e-300} {
		if got := decodeF64(encodeF64(v)); got != v {
			t.Fatalf("loss %v round-tripped to %v", v, got)
		}
	}
}
