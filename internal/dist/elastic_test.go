package dist

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"coarsegrain/internal/data"
	"coarsegrain/internal/layers"
	"coarsegrain/internal/net"
	"coarsegrain/internal/replica"
	"coarsegrain/internal/snapshot"
	"coarsegrain/internal/transport"
)

// elasticBatch is the elastic tests' global batch: divisible by every
// membership size they pass through (3 -> 2 on eviction, 2 -> 3 on
// rejoin), unlike the 2-power globalBatch the fixed-k tests use.
const (
	elasticBatch     = 24
	elasticSourceLen = 120 // divisible by elasticBatch, unlike sourceLen
)

// elasticShardNetE builds rank r's net of a k-rank elastic group:
// the seeded tiny architecture over shard r of elasticBatch.
func elasticShardNetE(r, k int) (*net.Net, error) {
	src := data.NewSyntheticMNIST(elasticSourceLen, dataSeed)
	shard, err := data.NewShard(src, r, k, elasticBatch)
	if err != nil {
		return nil, err
	}
	specs, err := tinySpecsE(shard, shard.LocalBatch())
	if err != nil {
		return nil, err
	}
	return net.New(specs, nil)
}

// elasticReplicaBaseline is the uninterrupted single-process reference
// for a k-rank run over elasticBatch shards.
func elasticReplicaBaseline(t *testing.T, k, iters int) ([][]float32, []float64) {
	t.Helper()
	reps := make([]*net.Net, k)
	for r := 0; r < k; r++ {
		n, err := elasticShardNetE(r, k)
		if err != nil {
			t.Fatal(err)
		}
		reps[r] = n
	}
	tr, err := replica.New(reps, solverCfg())
	if err != nil {
		t.Fatal(err)
	}
	losses := tr.Step(iters)
	return copyWeights(tr.Master()), losses
}

// skipData advances every data layer's cursor by batches whole batches,
// positioning a freshly built net where a clean run's would be after
// that many iterations.
func skipData(n *net.Net, batches int) {
	for _, l := range n.Layers() {
		if d, ok := l.(*layers.Data); ok {
			d.Skip(batches)
		}
	}
}

// elasticRebuild is the RebuildFunc every elastic test uses: the same
// seeded tiny net the bit-identity tests train, sharded for whatever
// membership the fence established, with the data cursor skipped to
// the fence point.
func elasticRebuild() RebuildFunc {
	return func(rank, size, startIter int) (*net.Net, error) {
		n, err := elasticShardNetE(rank, size)
		if err != nil {
			return nil, err
		}
		skipData(n, startIter)
		return n, nil
	}
}

// elasticCfg is the shared test configuration: fast heartbeats so
// failure detection fits in test time, generous fence timeout so slow
// CI machines don't flake.
func elasticCfg(iters int, dir string) ElasticConfig {
	return ElasticConfig{
		Iters:        iters,
		Rebuild:      elasticRebuild(),
		Solver:       solverCfg(),
		FenceDir:     dir,
		Heartbeat:    5 * time.Millisecond,
		PeerTimeout:  80 * time.Millisecond,
		FenceTimeout: 5 * time.Second,
	}
}

// startElastic launches RunElastic for every rank and returns the
// result slots plus per-rank done channels, so tests with a hung rank
// can unblock it (by closing its transport) before waiting on it.
func startElastic(trs []transport.Transport, cfg ElasticConfig) ([]*Report, []error, []chan struct{}) {
	k := len(trs)
	reports := make([]*Report, k)
	errs := make([]error, k)
	done := make([]chan struct{}, k)
	for r := 0; r < k; r++ {
		done[r] = make(chan struct{})
		go func(r int) {
			defer close(done[r])
			reports[r], errs[r] = RunElastic(trs[r], cfg)
		}(r)
	}
	return reports, errs, done
}

// cleanResume is the reference the fence protocol must match: a fresh
// k-rank group built at startIter, root solver loaded from the fenced
// checkpoint, weights synced down the tree, then trained to total.
// The elastic run's post-fence losses and final weights must be
// bit-identical to what this returns.
func cleanResume(t *testing.T, k, startIter, total int, ckpt string, opts Options) ([][]float32, []float64) {
	t.Helper()
	opts.StartIter = startIter
	trs := localGroup(k)
	var (
		wg      sync.WaitGroup
		weights [][]float32
		losses  []float64
		mu      sync.Mutex
		errs    []error
	)
	for r := 0; r < k; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			defer trs[r].Close()
			fail := func(err error) {
				mu.Lock()
				errs = append(errs, fmt.Errorf("resume rank %d: %w", r, err))
				mu.Unlock()
			}
			n, err := elasticShardNetE(r, k)
			if err != nil {
				fail(err)
				return
			}
			skipData(n, startIter)
			var nd *Node
			if r == 0 {
				nd, err = NewRoot(trs[r], n, solverCfg(), opts)
				if err == nil {
					err = snapshot.LoadSolverFile(ckpt, nd.Solver())
				}
			} else {
				nd, err = NewWorker(trs[r], n, opts)
			}
			if err == nil {
				err = nd.SyncWeights()
			}
			if err == nil {
				var ls []float64
				ls, err = nd.Step(total - startIter)
				if r == 0 {
					losses = ls
					weights = copyWeights(n)
				}
			}
			if err != nil {
				fail(err)
			}
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		t.Fatal(err)
	}
	return weights, losses
}

func requireSameLosses(t *testing.T, label string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d losses vs %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: loss %d: %v vs %v (not bit-identical)", label, i, got[i], want[i])
		}
	}
}

// requireOneFence asserts the coordinator recorded exactly one
// membership change and returns it.
func requireOneFence(t *testing.T, rpt *Report) FenceEvent {
	t.Helper()
	if rpt == nil {
		t.Fatal("coordinator returned no report")
	}
	if len(rpt.Fences) != 1 {
		t.Fatalf("coordinator recorded %d fences, want 1: %+v", len(rpt.Fences), rpt.Fences)
	}
	return rpt.Fences[0]
}

func requireMembers(t *testing.T, label string, got, want []int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %v, want %v", label, got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: %v, want %v", label, got, want)
		}
	}
}

// The tentpole contract: seeded crash of 1 of k=3 mid-run. The
// coordinator detects the dead rank by heartbeat silence, fences at
// the last committed iteration, re-forms as a 2-rank group, and the
// rest of the run is bit-identical — losses and weights — to a clean
// 2-rank run resumed from the fenced checkpoint.
func TestElasticCrashKillOneOfThreeBitIdentical(t *testing.T) {
	const total = 10
	dir := t.TempDir()

	_, ref3L := elasticReplicaBaseline(t, 3, total)

	locals := localGroup(3)
	chaos := transport.NewChaos(locals[2], transport.ChaosConfig{
		Mode: transport.ChaosCrash, AtIter: -1, IterSpan: 5,
	}, 46)
	if chaos.TriggerIter() != 3 {
		t.Fatalf("seeded trigger = %d, want 3 (seeded chaos must replay exactly)", chaos.TriggerIter())
	}
	trs := []transport.Transport{locals[0], locals[1], chaos}

	reports, errs, done := startElastic(trs, elasticCfg(total, dir))
	for _, d := range done {
		<-d
	}
	for _, tr := range trs {
		tr.Close()
	}

	if errs[0] != nil || errs[1] != nil {
		t.Fatalf("survivors errored: rank0=%v rank1=%v", errs[0], errs[1])
	}
	if !errors.Is(errs[2], transport.ErrClosed) {
		t.Fatalf("crashed rank err = %v, want ErrClosed", errs[2])
	}

	f := requireOneFence(t, reports[0])
	if f.Iter != chaos.TriggerIter() {
		t.Fatalf("fence at iteration %d, want trigger %d (last committed update)", f.Iter, chaos.TriggerIter())
	}
	requireMembers(t, "fence members", f.Members, []int{0, 1})
	requireMembers(t, "fence removed", f.Removed, []int{2})
	if reports[0].FinalSize != 2 || reports[1].FinalSize != 2 {
		t.Fatalf("final sizes %d/%d, want 2/2", reports[0].FinalSize, reports[1].FinalSize)
	}

	if len(reports[0].Losses) != total {
		t.Fatalf("coordinator committed %d losses, want %d", len(reports[0].Losses), total)
	}
	// Pre-fence losses match the uninterrupted 3-rank reference ...
	requireSameLosses(t, "pre-fence losses", reports[0].Losses[:f.Iter], ref3L[:f.Iter])
	// ... and everything after the fence matches a clean 2-rank run
	// resumed from the fenced checkpoint.
	refW, refL := cleanResume(t, 2, f.Iter, total, f.Checkpoint, Options{})
	requireSameLosses(t, "post-fence losses", reports[0].Losses[f.Iter:], refL)
	requireBitIdentical(t, "coordinator weights", reports[0].Weights, refW)
	requireBitIdentical(t, "survivor weights", reports[1].Weights, refW)
}

// Elastic growth: a rank outside the initial membership asks to join,
// is admitted at an iteration boundary, and the enlarged group's
// remaining run is bit-identical to a clean 3-rank run resumed from
// the admitting fence's checkpoint.
func TestElasticRejoinGrowsTreeBack(t *testing.T) {
	const total = 12
	dir := t.TempDir()

	trs := localGroup(3)
	cfg := elasticCfg(total, dir)
	cfg.Members = []int{0, 1}

	// Start the joiner first so its join request is queued before the
	// coordinator's first iteration boundary.
	reports := make([]*Report, 3)
	errs := make([]error, 3)
	done := make([]chan struct{}, 3)
	start := func(r int) {
		done[r] = make(chan struct{})
		go func() {
			defer close(done[r])
			reports[r], errs[r] = RunElastic(trs[r], cfg)
		}()
	}
	start(2)
	time.Sleep(50 * time.Millisecond)
	start(0)
	start(1)
	for _, d := range done {
		<-d
	}
	for _, tr := range trs {
		tr.Close()
	}

	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	f := requireOneFence(t, reports[0])
	requireMembers(t, "fence members", f.Members, []int{0, 1, 2})
	requireMembers(t, "fence joined", f.Joined, []int{2})
	if len(f.Removed) != 0 {
		t.Fatalf("join fence removed %v", f.Removed)
	}
	for r, rpt := range reports {
		if rpt.FinalSize != 3 || rpt.Evicted {
			t.Fatalf("rank %d report: size %d evicted %v", r, rpt.FinalSize, rpt.Evicted)
		}
	}

	if len(reports[0].Losses) != total {
		t.Fatalf("coordinator committed %d losses, want %d", len(reports[0].Losses), total)
	}
	refW, refL := cleanResume(t, 3, f.Iter, total, f.Checkpoint, Options{})
	requireSameLosses(t, "post-join losses", reports[0].Losses[f.Iter:], refL)
	for r := 0; r < 3; r++ {
		requireBitIdentical(t, fmt.Sprintf("rank %d weights", r), reports[r].Weights, refW)
	}
}

// Straggler tolerance: a rank that keeps answering heartbeats but
// blows the iteration deadline is evicted deterministically — the
// abandoned iteration re-runs at the reduced membership, so the
// committed loss trace and weights still match a clean degraded run.
// The long PeerTimeout proves the eviction came from the deadline
// path, not from being mistaken for dead.
func TestElasticStragglerEvictedDeterministically(t *testing.T) {
	const total = 10
	dir := t.TempDir()

	locals := localGroup(3)
	chaos := transport.NewChaos(locals[2], transport.ChaosConfig{
		Mode: transport.ChaosStraggle, AtIter: 4, StraggleDelay: 1500 * time.Millisecond,
	}, 1)
	trs := []transport.Transport{locals[0], locals[1], chaos}

	cfg := elasticCfg(total, dir)
	cfg.Heartbeat = 10 * time.Millisecond
	cfg.PeerTimeout = 2 * time.Second
	cfg.IterDeadline = 300 * time.Millisecond

	reports, errs, done := startElastic(trs, cfg)
	for _, d := range done {
		<-d
	}
	for _, tr := range trs {
		tr.Close()
	}

	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v (straggler eviction must be clean on every rank)", r, err)
		}
	}
	if !reports[2].Evicted {
		t.Fatal("straggler was not reported evicted")
	}
	f := requireOneFence(t, reports[0])
	if f.Iter != 4 {
		t.Fatalf("fence at iteration %d, want 4 (the stalled iteration is abandoned, not committed)", f.Iter)
	}
	requireMembers(t, "fence removed", f.Removed, []int{2})
	requireMembers(t, "fence members", f.Members, []int{0, 1})

	if len(reports[0].Losses) != total {
		t.Fatalf("coordinator committed %d losses, want %d", len(reports[0].Losses), total)
	}
	refW, refL := cleanResume(t, 2, f.Iter, total, f.Checkpoint, Options{})
	requireSameLosses(t, "post-eviction losses", reports[0].Losses[f.Iter:], refL)
	requireBitIdentical(t, "coordinator weights", reports[0].Weights, refW)
	requireBitIdentical(t, "survivor weights", reports[1].Weights, refW)
}

// A hung rank (alive at the transport level, silent on heartbeats) is
// indistinguishable from dead and must be fenced out the same way.
// The hung rank itself stays blocked until its endpoint is closed,
// then unwinds with a hard error — never a silent success.
func TestElasticHangDetectedAsDead(t *testing.T) {
	const total = 10
	dir := t.TempDir()

	locals := localGroup(3)
	chaos := transport.NewChaos(locals[1], transport.ChaosConfig{
		Mode: transport.ChaosHang, AtIter: 3,
	}, 1)
	trs := []transport.Transport{locals[0], chaos, locals[2]}

	cfg := elasticCfg(total, dir)
	reports, errs, done := startElastic(trs, cfg)
	<-done[0]
	<-done[2]
	// The hung rank is blocked inside the injected hang; closing its
	// endpoint is the only way out, exactly like killing the process.
	trs[1].Close()
	<-done[1]
	trs[0].Close()
	trs[2].Close()

	if errs[0] != nil || errs[2] != nil {
		t.Fatalf("survivors errored: rank0=%v rank2=%v", errs[0], errs[2])
	}
	if errs[1] == nil {
		t.Fatal("hung rank returned success; want a hard error after Close")
	}

	f := requireOneFence(t, reports[0])
	if f.Iter != 3 {
		t.Fatalf("fence at iteration %d, want 3", f.Iter)
	}
	requireMembers(t, "fence removed", f.Removed, []int{1})
	requireMembers(t, "fence members", f.Members, []int{0, 2})

	refW, refL := cleanResume(t, 2, f.Iter, total, f.Checkpoint, Options{})
	requireSameLosses(t, "post-fence losses", reports[0].Losses[f.Iter:], refL)
	requireBitIdentical(t, "coordinator weights", reports[0].Weights, refW)
	requireBitIdentical(t, "survivor weights", reports[2].Weights, refW)
}

// One-way partition: the victim's outbound traffic to the coordinator
// is cut, so its pongs vanish and it is declared dead — but the
// coordinator's fence still reaches it inbound, so it learns of its
// own eviction and returns a clean evicted report instead of hanging.
func TestElasticPartitionDetected(t *testing.T) {
	const total = 8
	dir := t.TempDir()

	locals := localGroup(3)
	chaos := transport.NewChaos(locals[1], transport.ChaosConfig{
		Mode: transport.ChaosPartition, Peers: []int{0}, AtIter: 2,
	}, 1)
	trs := []transport.Transport{locals[0], chaos, locals[2]}

	reports, errs, done := startElastic(trs, elasticCfg(total, dir))
	for _, d := range done {
		<-d
	}
	for _, tr := range trs {
		tr.Close()
	}

	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	if !reports[1].Evicted {
		t.Fatal("partitioned rank was not reported evicted")
	}
	f := requireOneFence(t, reports[0])
	if f.Iter != 2 {
		t.Fatalf("fence at iteration %d, want 2", f.Iter)
	}
	requireMembers(t, "fence removed", f.Removed, []int{1})
	requireMembers(t, "fence members", f.Members, []int{0, 2})

	refW, refL := cleanResume(t, 2, f.Iter, total, f.Checkpoint, Options{})
	requireSameLosses(t, "post-fence losses", reports[0].Losses[f.Iter:], refL)
	requireBitIdentical(t, "coordinator weights", reports[0].Weights, refW)
	requireBitIdentical(t, "survivor weights", reports[2].Weights, refW)
}

// Shutdown-race pin (satellite S1 at the dist level): Close during a
// Step blocked in a data-plane Recv must unblock promptly with an
// error wrapping ErrClosed — not hang, not return success.
func TestElasticStepCloseUnblocksTyped(t *testing.T) {
	g := localGroup(2)
	defer g[1].Close()
	nd, err := NewRoot(g[0], shardNet(t, 0, 2), solverCfg(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := nd.Step(1)
		done <- err
	}()
	time.Sleep(50 * time.Millisecond) // let Step reach the blocked Recv
	g[0].Close()
	select {
	case err := <-done:
		if !errors.Is(err, transport.ErrClosed) {
			t.Fatalf("Step after Close returned %v, want an error wrapping ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Step did not return within 2s of Close")
	}
}

func TestRunElasticValidation(t *testing.T) {
	g := localGroup(2)
	defer g[0].Close()
	defer g[1].Close()
	ok := elasticCfg(4, t.TempDir())

	bad := ok
	bad.Iters = 0
	if _, err := RunElastic(g[0], bad); err == nil {
		t.Fatal("accepted Iters <= StartIter")
	}
	bad = ok
	bad.Rebuild = nil
	if _, err := RunElastic(g[0], bad); err == nil {
		t.Fatal("accepted nil Rebuild")
	}
	bad = ok
	bad.Members = []int{1}
	if _, err := RunElastic(g[0], bad); err == nil {
		t.Fatal("accepted membership without the coordinator")
	}
	bad = ok
	bad.Members = []int{1, 0}
	if _, err := RunElastic(g[0], bad); err == nil {
		t.Fatal("accepted unsorted membership")
	}
	bad = ok
	bad.FenceDir = ""
	if _, err := RunElastic(g[0], bad); err == nil {
		t.Fatal("accepted coordinator without FenceDir")
	}
}

// Elastic recovery composes with the compressed ring: a seeded crash of
// 1 of k=3 under f16 wire + ring topology must fence and resume exactly
// like the uncompressed tree path does — and the post-fence run must be
// bit-identical to a clean 2-rank resume using the same codec and
// topology. The load-bearing detail is the error-feedback residual:
// survivors rebuild their Node at the fence, which zeroes the residual,
// exactly matching the fresh residual a clean resume starts with. A
// residual carried across the fence would diverge from the reference on
// the first post-fence iteration.
func TestElasticCrashCompressedRingBitIdentical(t *testing.T) {
	const total = 10
	dir := t.TempDir()
	opts := Options{Topology: TopologyRing, GradWire: "f16"}

	locals := localGroup(3)
	chaos := transport.NewChaos(locals[2], transport.ChaosConfig{
		Mode: transport.ChaosCrash, AtIter: -1, IterSpan: 5,
	}, 46)
	if chaos.TriggerIter() != 3 {
		t.Fatalf("seeded trigger = %d, want 3 (seeded chaos must replay exactly)", chaos.TriggerIter())
	}
	trs := []transport.Transport{locals[0], locals[1], chaos}

	cfg := elasticCfg(total, dir)
	cfg.Opts = opts
	reports, errs, done := startElastic(trs, cfg)
	for _, d := range done {
		<-d
	}
	for _, tr := range trs {
		tr.Close()
	}

	if errs[0] != nil || errs[1] != nil {
		t.Fatalf("survivors errored: rank0=%v rank1=%v", errs[0], errs[1])
	}
	if !errors.Is(errs[2], transport.ErrClosed) {
		t.Fatalf("crashed rank err = %v, want ErrClosed", errs[2])
	}

	f := requireOneFence(t, reports[0])
	requireMembers(t, "fence members", f.Members, []int{0, 1})
	if len(reports[0].Losses) != total {
		t.Fatalf("coordinator committed %d losses, want %d", len(reports[0].Losses), total)
	}

	refW, refL := cleanResume(t, 2, f.Iter, total, f.Checkpoint, opts)
	requireSameLosses(t, "post-fence losses", reports[0].Losses[f.Iter:], refL)
	requireBitIdentical(t, "coordinator weights", reports[0].Weights, refW)
	requireBitIdentical(t, "survivor weights", reports[1].Weights, refW)
}
