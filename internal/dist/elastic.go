// Elastic fault tolerance for the distributed trainer (ROBUSTNESS.md,
// "Cluster failures"): RunElastic wraps the lockstep Node protocol in a
// supervisor that detects dead peers with coordinator-driven heartbeats,
// fences the group at the last committed iteration when membership must
// change, and resumes the survivors (or a grown group, on rejoin) from
// the fenced checkpoint — bit-identical to a clean run of the new
// membership resumed at that same checkpoint.
//
// # Failure model
//
// Rank 0 (the coordinator) pings every member on the control plane and
// declares a peer dead when its pongs stop for PeerTimeout. A peer that
// keeps answering pings but stops making training progress is a
// straggler, not a corpse: the optional per-iteration deadline evicts
// it explicitly, by following the lockstep wait chain (each rank
// reports which rank it is blocked on in its pong) to the rank that is
// holding everyone up. The two paths are deliberately distinct — a
// straggler's link still works, so only the deadline may remove it.
//
// # The fence
//
// A fence is the single recovery primitive, used for deaths, eviction
// and rejoin alike:
//
//  1. The coordinator picks the fence point F — the number of solver
//     updates actually applied — and checkpoints the solver at F.
//  2. It bumps the membership epoch and broadcasts KindFence (epoch and
//     F in the tag, the new member list in the payload) to every peer,
//     re-sending until every *new* member has acknowledged. Interrupt
//     unwinds any lockstep loop still blocked on the old membership.
//  3. Only after the ACK barrier does any epoch-N+1 data frame exist,
//     so a surviving rank can never see new-epoch traffic before it has
//     abandoned the old epoch; leftovers from the old epoch are
//     discarded as stale by the transport's (epoch, iter) ordering.
//  4. Every member rebuilds its Node for the new (rank, size) over a
//     transport.View, with StartIter F and the data pipeline skipped to
//     F batches; the coordinator reloads the fenced checkpoint and
//     SyncWeights re-seeds the group bitwise.
//
// Step 4 is literally the clean-resume code path, which is the whole
// determinism argument: after a fence the group is indistinguishable
// from a fresh k'-rank run resumed from that checkpoint, so everything
// the lockstep protocol guarantees about bit-identical training holds
// for the degraded (or re-grown) run too.
//
// # Commit rule under stragglers
//
// An iteration either commits — every contribution folded in ascending
// rank order, solver updated — or it is abandoned at the fence and
// re-run by the new membership from the checkpoint. A slow rank's
// contribution is therefore never silently dropped: it is either in
// the committed fold, or the whole iteration is rolled back with it.
package dist

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"coarsegrain/internal/net"
	"coarsegrain/internal/snapshot"
	"coarsegrain/internal/solver"
	"coarsegrain/internal/trace"
	"coarsegrain/internal/transport"
)

// RebuildFunc builds the network a given view rank of a size-rank group
// trains when iteration numbering starts at startIter. It must produce
// the same seeded architecture as the original build, sharded for
// (rank, size), with the data pipeline already skipped startIter batches
// (layers.Data.Skip) — the elastic supervisor calls it at every
// membership change, and a clean-resume run must be able to call it with
// identical arguments and get an identical net.
type RebuildFunc func(rank, size, startIter int) (*net.Net, error)

// ElasticConfig configures RunElastic. Every rank of the base mesh must
// pass identical values (rank-independent fields only).
type ElasticConfig struct {
	// Iters is the absolute target iteration count: the run ends when
	// the committed-update counter reaches it.
	Iters int
	// Rebuild builds the per-membership network (see RebuildFunc).
	Rebuild RebuildFunc
	// Solver configures the coordinator's solver.
	Solver solver.Config
	// Opts carries the dist options (fanout, retry, overlap); Epoch and
	// StartIter are managed by the supervisor and ignored here.
	Opts Options
	// Members lists the initial base-rank membership (must include 0,
	// ascending). Nil means every base rank. A base rank outside the
	// initial membership starts in the joining state and is admitted at
	// the next iteration boundary.
	Members []int
	// StartIter resumes iteration numbering at this point (0 = fresh).
	StartIter int
	// ResumePath, on the coordinator, loads this solver snapshot before
	// the first iteration; the initial weight sync ships its weights.
	ResumePath string
	// FenceDir is where the coordinator writes fence checkpoints
	// (required on rank 0).
	FenceDir string
	// SnapshotPath, when set on the coordinator, receives the final
	// solver state on successful completion (dnntrain-compatible).
	SnapshotPath string
	// Keep bounds checkpoint retention in FenceDir (<= 0 keeps all).
	Keep int
	// MinRanks aborts the run when a fence would shrink the membership
	// below it (default 1 — degrade all the way to solo).
	MinRanks int
	// Rejoin makes an evicted rank re-enter the joining state instead of
	// returning; a crashed rank can never rejoin (its endpoint is gone).
	Rejoin bool
	// Heartbeat is the coordinator's ping period (default 20ms).
	Heartbeat time.Duration
	// PeerTimeout is the silence after which a member is declared dead
	// (default 10 heartbeats). Stragglers answer pings, so they never
	// trip this; only IterDeadline can evict them.
	PeerTimeout time.Duration
	// IterDeadline, when positive, bounds one lockstep iteration at the
	// coordinator; on expiry the wait chain's straggler is evicted and
	// the iteration re-runs at the reduced membership.
	IterDeadline time.Duration
	// FenceTimeout bounds the fence's ACK barrier and a worker's wait
	// for a fence after its lockstep loop unwound (default 10s).
	FenceTimeout time.Duration
	// JoinWait bounds how long a non-member keeps asking to join
	// (default FenceTimeout).
	JoinWait time.Duration
}

func (c ElasticConfig) withDefaults(size int) ElasticConfig {
	if c.Heartbeat <= 0 {
		c.Heartbeat = 20 * time.Millisecond
	}
	if c.PeerTimeout <= 0 {
		c.PeerTimeout = 10 * c.Heartbeat
	}
	if c.FenceTimeout <= 0 {
		c.FenceTimeout = 10 * time.Second
	}
	if c.JoinWait <= 0 {
		c.JoinWait = c.FenceTimeout
	}
	if c.MinRanks < 1 {
		c.MinRanks = 1
	}
	if c.Members == nil {
		c.Members = make([]int, size)
		for i := range c.Members {
			c.Members[i] = i
		}
	}
	return c
}

// FenceEvent records one membership change.
type FenceEvent struct {
	// Epoch is the membership epoch the fence established.
	Epoch int
	// Iter is the fence point: committed updates when the fence fired.
	Iter int
	// Members is the new membership (base ranks, ascending).
	Members []int
	// Removed and Joined list the base ranks the fence dropped/admitted.
	Removed []int
	Joined  []int
	// Checkpoint is the fenced solver snapshot the new membership
	// resumed from.
	Checkpoint string
}

// Report summarizes one rank's elastic run.
type Report struct {
	// Losses are the committed global losses (coordinator only), in
	// commit order. Iterations abandoned at a fence do not appear.
	Losses []float64
	// Fences lists membership changes in order (coordinator only).
	Fences []FenceEvent
	// FinalSize is the membership size at the end of the run.
	FinalSize int
	// Evicted is set on a worker that was fenced out and did not rejoin.
	Evicted bool
	// Weights is a copy of this rank's final parameter values.
	Weights [][]float32
}

// errFencePending is the interrupt a worker's control responder injects
// when a fence arrives: the lockstep loop unwinds and adopts it.
var errFencePending = errors.New("dist: fence pending")

// errStraggler annotates a deadline eviction's PeerDownError cause.
var errStraggler = errors.New("dist: straggler exceeded iteration deadline")

// itof/ftoi move small integers through float32 control payloads as raw
// bits — no rounding, sign-preserving (so -1 "not waiting" survives).
func itof(v int) float32 { return math.Float32frombits(uint32(int32(v))) }
func ftoi(f float32) int { return int(int32(math.Float32bits(f))) }

func encodeMembers(members []int) []float32 {
	out := make([]float32, len(members))
	for i, m := range members {
		out[i] = itof(m)
	}
	return out
}

func decodeMembers(payload []float32) []int {
	out := make([]int, len(payload))
	for i, f := range payload {
		out[i] = ftoi(f)
	}
	return out
}

func containsRank(members []int, r int) bool {
	for _, m := range members {
		if m == r {
			return true
		}
	}
	return false
}

func weightsCopy(n *net.Net) [][]float32 {
	out := make([][]float32, len(n.Params()))
	for i, p := range n.Params() {
		out[i] = append([]float32(nil), p.Data()...)
	}
	return out
}

// RunElastic runs fault-tolerant distributed training over the base
// mesh t (all ranks of the original rendezvous, alive or not). Rank 0
// coordinates; every process calls RunElastic with the same config.
// It returns this rank's Report, or an error when the run cannot
// continue (coordinator lost, membership below MinRanks, this rank's
// own endpoint dead).
func RunElastic(t transport.Transport, cfg ElasticConfig) (*Report, error) {
	cfg = cfg.withDefaults(t.Size())
	if cfg.Iters <= cfg.StartIter {
		return nil, fmt.Errorf("dist: target %d iterations not beyond start %d", cfg.Iters, cfg.StartIter)
	}
	if cfg.Rebuild == nil {
		return nil, fmt.Errorf("dist: elastic run needs a Rebuild function")
	}
	if !containsRank(cfg.Members, 0) {
		return nil, fmt.Errorf("dist: initial membership %v must include the coordinator", cfg.Members)
	}
	if !sort.IntsAreSorted(cfg.Members) {
		return nil, fmt.Errorf("dist: initial membership %v not ascending", cfg.Members)
	}
	if t.Rank() == 0 {
		if cfg.FenceDir == "" {
			return nil, fmt.Errorf("dist: coordinator needs a FenceDir for fence checkpoints")
		}
		c := &coordinator{base: t, cfg: cfg}
		return c.run()
	}
	w := &elasticWorker{base: t, cfg: cfg}
	return w.run()
}

// buildNode constructs the Node one membership epoch trains with: a
// re-ranked view over the base mesh, a freshly rebuilt net positioned at
// startIter, and tags carrying the epoch.
func buildNode(base transport.Transport, cfg ElasticConfig, members []int, epoch, startIter int) (*Node, *transport.View, error) {
	view, err := transport.NewView(base, members)
	if err != nil {
		return nil, nil, err
	}
	n, err := cfg.Rebuild(view.Rank(), len(members), startIter)
	if err != nil {
		return nil, nil, fmt.Errorf("dist: rebuild rank %d/%d at iter %d: %w", view.Rank(), len(members), startIter, err)
	}
	opts := cfg.Opts
	opts.Epoch = epoch
	opts.StartIter = startIter
	var nd *Node
	if view.Rank() == 0 {
		nd, err = NewRoot(view, n, cfg.Solver, opts)
	} else {
		nd, err = NewWorker(view, n, opts)
	}
	if err != nil {
		return nil, nil, err
	}
	return nd, view, nil
}

// recoverSpan records a PhaseRecover span on the (possibly nil) tracer:
// the fence iteration in Lo, the new membership size in Hi.
func recoverSpan(tr *trace.Tracer, name string, fenceIter, newSize int, start time.Time) {
	if !tr.Enabled() {
		return
	}
	tr.Record(trace.Span{
		Name: name, Phase: trace.PhaseRecover, Rank: trace.RankDriver, Band: -1,
		Lo: fenceIter, Hi: newSize, Start: tr.Stamp(start), Dur: time.Since(start),
	})
}

// ---------------------------------------------------------------------
// Coordinator (base rank 0)
// ---------------------------------------------------------------------

type ackMsg struct {
	peer, epoch int
}

type coordinator struct {
	base transport.Transport
	cfg  ElasticConfig

	mu       sync.Mutex
	members  []int // current membership, base ranks ascending
	lastSeen map[int]time.Time
	progress map[int]int // last reported committed iteration per peer
	waitOn   map[int]int // base rank each peer reports being blocked on
	down     map[int]error
	joinReq  map[int]bool

	ackCh chan ackMsg
	stop  chan struct{}
	wg    sync.WaitGroup

	node  *Node
	epoch int
	// committed mirrors the main loop's committed-update count for the
	// deadline callback, which must not read the Node's plain counters.
	committed atomic.Int64

	report Report
}

func (c *coordinator) run() (*Report, error) {
	size := c.base.Size()
	c.members = append([]int(nil), c.cfg.Members...)
	c.lastSeen = make(map[int]time.Time, size)
	c.progress = make(map[int]int, size)
	c.waitOn = make(map[int]int, size)
	c.down = make(map[int]error)
	c.joinReq = make(map[int]bool)
	c.ackCh = make(chan ackMsg, 8*size)
	c.stop = make(chan struct{})
	now := time.Now()
	for _, m := range c.members {
		c.lastSeen[m] = now
		c.waitOn[m] = -1
	}
	c.committed.Store(int64(c.cfg.StartIter))

	nd, _, err := buildNode(c.base, c.cfg, c.members, 0, c.cfg.StartIter)
	if err != nil {
		return nil, err
	}
	c.node = nd
	if c.cfg.ResumePath != "" {
		if err := snapshot.LoadSolverFile(c.cfg.ResumePath, nd.Solver()); err != nil {
			return nil, fmt.Errorf("dist: resume from %s: %w", c.cfg.ResumePath, err)
		}
		if nd.Solver().Iter() != c.cfg.StartIter {
			return nil, fmt.Errorf("dist: checkpoint %s is at iteration %d, run configured to start at %d",
				c.cfg.ResumePath, nd.Solver().Iter(), c.cfg.StartIter)
		}
	}

	// Monitoring goroutines: one control listener per base peer (the
	// single consumer of that link's control queue) plus the pinger.
	for p := 1; p < size; p++ {
		c.wg.Add(1)
		go c.listen(p)
	}
	c.wg.Add(1)
	go c.ping()
	defer func() {
		close(c.stop)
		c.wg.Wait()
	}()

	needSync := true
	for c.node.Iter() < c.cfg.Iters {
		if downs, joins := c.pendingChanges(); len(downs)+len(joins) > 0 {
			if err := c.fence(downs, joins); err != nil {
				return &c.report, err
			}
			needSync = false
			continue
		}
		if needSync {
			if err := c.node.SyncWeights(); err != nil {
				if ferr := c.recover(err); ferr != nil {
					return &c.report, ferr
				}
			}
			// recover ends in a fence, which re-syncs internally.
			needSync = false
			continue
		}
		timer := c.armDeadline()
		ls, err := c.node.Step(1)
		if timer != nil {
			timer.Stop()
		}
		if err != nil {
			if ferr := c.recover(err); ferr != nil {
				return &c.report, ferr
			}
			continue
		}
		c.committed.Store(int64(c.node.Iter()))
		c.report.Losses = append(c.report.Losses, ls...)
	}
	c.report.FinalSize = c.node.Size()
	c.report.Weights = weightsCopy(c.node.Net())
	if c.cfg.SnapshotPath != "" {
		if err := snapshot.SaveSolverFile(c.cfg.SnapshotPath, c.node.Solver()); err != nil {
			return &c.report, fmt.Errorf("dist: final snapshot: %w", err)
		}
	}
	return &c.report, nil
}

// recover attributes a lockstep failure to membership changes and
// fences; when no peer can be blamed within the fence timeout, the
// original error is returned — fail loud, never spin.
func (c *coordinator) recover(err error) error {
	var pde *transport.PeerDownError
	if errors.As(err, &pde) && pde.Rank != 0 {
		c.markDown(pde.Rank, pde.Cause)
	}
	deadline := time.Now().Add(c.cfg.FenceTimeout)
	for {
		downs, joins := c.pendingChanges()
		if len(downs)+len(joins) > 0 {
			return c.fence(downs, joins)
		}
		if time.Now().After(deadline) {
			return err
		}
		time.Sleep(c.cfg.Heartbeat)
	}
}

// armDeadline starts the straggler deadline for the iteration about to
// run, or returns nil when disabled. If the iteration has not committed
// when it fires, the wait chain's culprit is evicted and the lockstep
// loop interrupted; an iteration that commits first cancels it (its
// contributions were folded in rank order — the other arm of the
// commit rule).
func (c *coordinator) armDeadline() *time.Timer {
	if c.cfg.IterDeadline <= 0 {
		return nil
	}
	nd := c.node
	iterAt := nd.Iter()
	epochAt := nd.Epoch()
	return time.AfterFunc(c.cfg.IterDeadline, func() {
		if int(c.committed.Load()) > iterAt {
			return // the iteration committed just before the deadline
		}
		c.mu.Lock()
		stale := c.epoch != epochAt
		c.mu.Unlock()
		if stale {
			return // a fence already superseded this iteration
		}
		victim := c.pickStraggler(nd, iterAt)
		if victim <= 0 {
			return
		}
		c.markDown(victim, fmt.Errorf("%w (no commit within %v at iteration %d)",
			errStraggler, c.cfg.IterDeadline, iterAt))
	})
}

// pickStraggler follows the lockstep wait chain from the coordinator to
// the base rank actually holding the iteration up: each rank's pong
// reports who it is blocked on, and the chain's last waiting-on-nobody
// rank is the straggler. Falls back to the least-progressed member when
// the chain gives nothing usable. Returns -1 (or 0) when no peer should
// be evicted.
func (c *coordinator) pickStraggler(nd *Node, iterAt int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	seen := map[int]bool{0: true}
	cur := -1
	if v := nd.WaitingOn(); v >= 0 && v < len(c.members) {
		cur = c.members[v]
	}
	for cur > 0 && !seen[cur] {
		seen[cur] = true
		next, ok := c.waitOn[cur]
		if !ok || next < 0 || next == cur {
			return cur
		}
		cur = next
	}
	if cur > 0 {
		return cur // cycle: evict where the chain closed
	}
	// Chain unusable (coordinator not blocked, or it pointed home):
	// evict the member with the least reported progress.
	victim, worst := -1, 1<<62
	for _, m := range c.members {
		if m == 0 || c.down[m] != nil {
			continue
		}
		p := c.progress[m]
		if p < worst || (p == worst && m > victim) {
			victim, worst = m, p
		}
	}
	if worst > iterAt {
		return -1 // everyone has moved past the stalled iteration
	}
	return victim
}

func (c *coordinator) currentMembers() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]int(nil), c.members...)
}

// markDown declares a member dead (or evicted) exactly once and unwinds
// the coordinator's lockstep loop.
func (c *coordinator) markDown(rank int, cause error) {
	c.mu.Lock()
	if rank == 0 || !containsRank(c.members, rank) || c.down[rank] != nil {
		c.mu.Unlock()
		return
	}
	c.down[rank] = cause
	c.mu.Unlock()
	c.base.Interrupt(&transport.PeerDownError{Rank: rank, Cause: cause})
}

// pendingChanges snapshots the accumulated deaths and join requests.
func (c *coordinator) pendingChanges() (downs map[int]error, joins []int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.down) > 0 {
		downs = make(map[int]error, len(c.down))
		for r, e := range c.down {
			downs[r] = e
		}
	}
	for r := range c.joinReq {
		if !containsRank(c.members, r) {
			joins = append(joins, r)
		}
	}
	sort.Ints(joins)
	return downs, joins
}

// listen is the single consumer of the control link from base peer p:
// it dispatches pongs into the liveness maps, join requests into the
// pending set, and fence acks to the barrier.
func (c *coordinator) listen(p int) {
	defer c.wg.Done()
	poll := c.cfg.Heartbeat
	for {
		select {
		case <-c.stop:
			return
		default:
		}
		tag, payload, err := c.base.RecvCtrl(p, poll)
		if errors.Is(err, transport.ErrCtrlTimeout) {
			continue
		}
		if err != nil {
			return // endpoint closed
		}
		switch tag.Kind() {
		case transport.KindPong:
			c.mu.Lock()
			c.lastSeen[p] = time.Now()
			if len(payload) >= 2 {
				c.progress[p] = ftoi(payload[0])
				c.waitOn[p] = ftoi(payload[1])
			}
			c.mu.Unlock()
		case transport.KindJoin:
			c.mu.Lock()
			c.joinReq[p] = true
			c.mu.Unlock()
		case transport.KindAck:
			select {
			case c.ackCh <- ackMsg{peer: p, epoch: tag.Epoch()}:
			default: // barrier not draining: stale ack, shed
			}
		}
	}
}

// ping probes every member each heartbeat and declares the silent ones
// dead after PeerTimeout.
func (c *coordinator) ping() {
	defer c.wg.Done()
	tick := time.NewTicker(c.cfg.Heartbeat)
	defer tick.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-tick.C:
		}
		c.mu.Lock()
		epoch := c.epoch
		members := append([]int(nil), c.members...)
		type suspect struct {
			rank    int
			silence time.Duration
		}
		var suspects []suspect
		for _, m := range members {
			if m == 0 || c.down[m] != nil {
				continue
			}
			if s := time.Since(c.lastSeen[m]); s > c.cfg.PeerTimeout {
				suspects = append(suspects, suspect{rank: m, silence: s})
			}
		}
		c.mu.Unlock()
		tag := transport.MakeTagE(transport.KindPing, epoch, 0, 0, 0)
		for _, m := range members {
			if m == 0 {
				continue
			}
			// Best-effort probe: a dead peer's queue sheds it, and the
			// silence is what the timeout below detects.
			//dnnlint:ignore transerr heartbeat probes are fire-and-forget by design
			_ = c.base.SendCtrl(m, tag, nil)
		}
		for _, s := range suspects {
			c.markDown(s.rank, fmt.Errorf("no heartbeat for %v (timeout %v)", s.silence, c.cfg.PeerTimeout))
		}
	}
}

// fence executes one membership change end to end: checkpoint at the
// fence point, FENCE broadcast with ACK barrier (non-ackers are dropped
// and the fence retried), rebuild over the new view, reload, re-sync.
func (c *coordinator) fence(downs map[int]error, joins []int) error {
	start := time.Now()
	fenceIter := c.node.Solver().Iter()
	ckpt, err := snapshot.SaveCheckpoint(c.cfg.FenceDir, c.node.Solver(), c.cfg.Keep)
	if err != nil {
		return fmt.Errorf("dist: fence checkpoint at iteration %d: %w", fenceIter, err)
	}

	oldMembers := c.currentMembers()
	admitted := append([]int(nil), joins...)
	for {
		var newMembers []int
		for _, m := range oldMembers {
			if downs[m] == nil {
				newMembers = append(newMembers, m)
			}
		}
		for _, j := range admitted {
			if downs[j] == nil && !containsRank(newMembers, j) {
				newMembers = append(newMembers, j)
			}
		}
		sort.Ints(newMembers)
		if len(newMembers) < c.cfg.MinRanks {
			return fmt.Errorf("dist: fence at iteration %d leaves %d ranks, below MinRanks %d",
				fenceIter, len(newMembers), c.cfg.MinRanks)
		}
		c.mu.Lock()
		if c.epoch+1 > transport.MaxEpoch {
			c.mu.Unlock()
			return fmt.Errorf("dist: membership epochs exhausted (%d fences)", c.epoch)
		}
		c.epoch++
		epoch := c.epoch
		c.mu.Unlock()
		c.base.Resume()

		acked, err := c.fenceBarrier(epoch, newMembers, fenceIter)
		if err != nil {
			return err
		}
		if len(acked) == len(newMembers)-1 {
			// Barrier complete: commit the membership.
			var removed []int
			c.mu.Lock()
			for r := range c.down {
				removed = append(removed, r)
			}
			sort.Ints(removed)
			c.members = newMembers
			c.down = make(map[int]error)
			now := time.Now()
			for _, m := range newMembers {
				c.lastSeen[m] = now
				c.waitOn[m] = -1
				delete(c.joinReq, m)
			}
			c.mu.Unlock()

			nd, _, err := buildNode(c.base, c.cfg, newMembers, c.epoch, fenceIter)
			if err != nil {
				return err
			}
			if err := snapshot.LoadSolverFile(ckpt, nd.Solver()); err != nil {
				return fmt.Errorf("dist: reload fenced checkpoint %s: %w", ckpt, err)
			}
			c.node = nd
			c.committed.Store(int64(fenceIter))
			if err := nd.SyncWeights(); err != nil {
				// A member died between ack and sync: recover with a
				// fresh fence rather than giving up.
				return c.recover(err)
			}
			joined := make([]int, 0, len(admitted))
			for _, j := range admitted {
				if containsRank(newMembers, j) {
					joined = append(joined, j)
				}
			}
			c.report.Fences = append(c.report.Fences, FenceEvent{
				Epoch: epoch, Iter: fenceIter, Members: newMembers,
				Removed: removed, Joined: joined, Checkpoint: ckpt,
			})
			recoverSpan(nd.Net().Tracer(), "fence", fenceIter, len(newMembers), start)
			return nil
		}
		// Some member never acked within the barrier timeout: treat it
		// as down and fence again without it.
		for _, m := range newMembers {
			if m != 0 && !acked[m] {
				cause := fmt.Errorf("no fence ack for epoch %d within %v", epoch, c.cfg.FenceTimeout)
				downs[m] = cause
				c.mu.Lock()
				if containsRank(c.members, m) {
					c.down[m] = cause
				}
				c.mu.Unlock()
			}
		}
	}
}

// fenceBarrier broadcasts the fence and collects acks from every new
// non-coordinator member, re-sending each heartbeat until the barrier
// completes or times out. It returns the set of peers that acked.
func (c *coordinator) fenceBarrier(epoch int, newMembers []int, fenceIter int) (map[int]bool, error) {
	tag := transport.MakeTagE(transport.KindFence, epoch, fenceIter, 0, 0)
	payload := encodeMembers(newMembers)
	need := make(map[int]bool, len(newMembers))
	for _, m := range newMembers {
		if m != 0 {
			need[m] = true
		}
	}
	acked := make(map[int]bool, len(need))
	broadcast := func() {
		// Every base peer hears the fence: survivors adopt it, evictees
		// learn they are out, joiners learn they are in. Sends to dead
		// endpoints shed harmlessly; the barrier below is the guarantee.
		for p := 1; p < c.base.Size(); p++ {
			//dnnlint:ignore transerr fence broadcast is re-sent until acked; the barrier is the guarantee
			_ = c.base.SendCtrl(p, tag, payload)
		}
	}
	broadcast()
	deadline := time.NewTimer(c.cfg.FenceTimeout)
	defer deadline.Stop()
	resend := time.NewTicker(c.cfg.Heartbeat * 4)
	defer resend.Stop()
	for len(acked) < len(need) {
		select {
		case ack := <-c.ackCh:
			if ack.epoch == epoch && need[ack.peer] {
				acked[ack.peer] = true
			}
		case <-resend.C:
			broadcast()
		case <-deadline.C:
			return acked, nil
		case <-c.stop:
			return acked, fmt.Errorf("dist: coordinator stopped during fence barrier")
		}
	}
	return acked, nil
}

// ---------------------------------------------------------------------
// Worker (base rank >= 1)
// ---------------------------------------------------------------------

// fenceOrder is one decoded KindFence announcement.
type fenceOrder struct {
	epoch   int
	iter    int
	members []int
}

// memberInfo is what the worker's control responder reads to answer
// pings: the live node (whose WaitingOn is the lockstep wait pointer)
// and the membership that maps its view ranks back to base ranks.
type memberInfo struct {
	node    *Node
	members []int
}

type elasticWorker struct {
	base transport.Transport
	cfg  ElasticConfig

	info     atomic.Pointer[memberInfo]
	progress atomic.Int64
	adopted  atomic.Int64 // highest membership epoch adopted (acked)

	mu      sync.Mutex
	pending *fenceOrder
	fenceCh chan struct{}

	// ctrlDead is closed when respond exits on a dead control link: no
	// fence can ever arrive, so takeFence must give up immediately
	// instead of burning the full FenceTimeout on a crashed endpoint.
	ctrlDead chan struct{}

	stop chan struct{}
	wg   sync.WaitGroup
}

func (w *elasticWorker) run() (*Report, error) {
	w.fenceCh = make(chan struct{}, 1)
	w.ctrlDead = make(chan struct{})
	w.stop = make(chan struct{})
	w.adopted.Store(-1)
	w.progress.Store(int64(w.cfg.StartIter))

	w.wg.Add(1)
	go w.respond()
	defer func() {
		close(w.stop)
		w.wg.Wait()
	}()

	me := w.base.Rank()
	var nd *Node
	if containsRank(w.cfg.Members, me) {
		var err error
		nd, _, err = buildNode(w.base, w.cfg, w.cfg.Members, 0, w.cfg.StartIter)
		if err != nil {
			return nil, err
		}
		w.setInfo(nd, w.cfg.Members)
		w.adopted.Store(0)
		if err := nd.SyncWeights(); err != nil {
			var out adoptOutcome
			if nd, out = w.awaitAndAdopt(); out == adoptEvicted {
				return &Report{Evicted: true}, nil
			} else if out == adoptNoFence {
				return nil, err
			}
		}
	}

	joinStart := time.Now()
	for {
		if nd == nil {
			// Joining: ask, then wait a beat for the admitting fence.
			if time.Since(joinStart) > w.cfg.JoinWait {
				return nil, fmt.Errorf("dist: rank %d not admitted within %v", me, w.cfg.JoinWait)
			}
			joinTag := transport.MakeTagE(transport.KindJoin, 0, 0, 0, me)
			//dnnlint:ignore transerr join requests repeat until a fence admits this rank
			_ = w.base.SendCtrl(0, joinTag, nil)
			if f := w.takeFence(4 * w.cfg.Heartbeat); f != nil {
				var out adoptOutcome
				if nd, out = w.adopt(f); out == adoptEvicted {
					return &Report{Evicted: true}, nil
				}
			}
			continue
		}
		if nd.Iter() >= w.cfg.Iters {
			return &Report{FinalSize: nd.Size(), Weights: weightsCopy(nd.Net())}, nil
		}
		_, err := nd.Step(1)
		if err == nil {
			w.progress.Store(int64(nd.Iter()))
			continue
		}
		var out adoptOutcome
		if nd, out = w.awaitAndAdopt(); out == adoptEvicted {
			return &Report{Evicted: true}, nil
		} else if out == adoptNoFence {
			return nil, err
		}
		joinStart = time.Now()
	}
}

// adoptOutcome classifies how a fence (or its absence) left this rank.
type adoptOutcome int

const (
	// adoptMember: this rank is a member of the new epoch (node != nil).
	adoptMember adoptOutcome = iota
	// adoptJoining: fenced out with Rejoin — back to the joining state.
	adoptJoining
	// adoptEvicted: fenced out for good; the run is over for this rank.
	adoptEvicted
	// adoptNoFence: no fence arrived; the triggering error stands.
	adoptNoFence
)

// awaitAndAdopt handles a lockstep failure: wait for the fence that
// explains it and adopt it.
func (w *elasticWorker) awaitAndAdopt() (*Node, adoptOutcome) {
	deadline := time.Now().Add(w.cfg.FenceTimeout)
	for {
		remain := time.Until(deadline)
		if remain <= 0 {
			return nil, adoptNoFence
		}
		f := w.takeFence(remain)
		if f == nil {
			return nil, adoptNoFence
		}
		if nd, out := w.adopt(f); out != adoptNoFence {
			return nd, out
		}
	}
}

// adopt applies one fence: resume the interrupted transport, then
// either rebuild-ack-resync as a member of the new epoch, flip to the
// joining state (eviction with Rejoin), or end the run for this rank
// (eviction without Rejoin).
func (w *elasticWorker) adopt(f *fenceOrder) (*Node, adoptOutcome) {
	start := time.Now()
	w.base.Resume()
	me := w.base.Rank()
	w.adopted.Store(int64(f.epoch))
	if !containsRank(f.members, me) {
		w.setInfo(nil, nil)
		if w.cfg.Rejoin {
			return nil, adoptJoining
		}
		return nil, adoptEvicted
	}
	nd, _, err := buildNode(w.base, w.cfg, f.members, f.epoch, f.iter)
	if err != nil {
		// Cannot rebuild (should not happen with a well-formed fence):
		// stay silent; the coordinator's ACK barrier will evict this
		// rank and a follow-up fence decides its fate.
		w.setInfo(nil, nil)
		return nil, adoptNoFence
	}
	w.setInfo(nd, f.members)
	w.progress.Store(int64(f.iter))
	ackTag := transport.MakeTagE(transport.KindAck, f.epoch, f.iter, 0, me)
	//dnnlint:ignore transerr a shed ack is recovered by the coordinator's fence re-send
	_ = w.base.SendCtrl(0, ackTag, nil)
	if err := nd.SyncWeights(); err != nil {
		// Another fence raced the re-sync; the caller's loop picks it
		// up on the next Step failure.
		return nd, adoptMember
	}
	recoverSpan(nd.Net().Tracer(), "adopt", f.iter, len(f.members), start)
	return nd, adoptMember
}

func (w *elasticWorker) setInfo(nd *Node, members []int) {
	if nd == nil {
		w.info.Store(&memberInfo{})
		return
	}
	w.info.Store(&memberInfo{node: nd, members: append([]int(nil), members...)})
}

// takeFence waits up to timeout for an unadopted fence announcement.
func (w *elasticWorker) takeFence(timeout time.Duration) *fenceOrder {
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for {
		w.mu.Lock()
		f := w.pending
		w.pending = nil
		w.mu.Unlock()
		if f != nil && int64(f.epoch) > w.adopted.Load() {
			return f
		}
		select {
		case <-w.fenceCh:
		case <-deadline.C:
			return nil
		case <-w.ctrlDead:
			return nil
		case <-w.stop:
			return nil
		}
	}
}

// respond is the worker's control responder — the single consumer of
// the coordinator's control link. It answers pings with (progress,
// blocked-on base rank), stashes fences and interrupts the lockstep
// loop so they get adopted, and re-acks fence re-sends whose original
// ack was shed. It also watches for coordinator silence: a member that
// has heard nothing for several timeouts unwinds with ErrPeerDown
// rather than blocking forever.
func (w *elasticWorker) respond() {
	defer w.wg.Done()
	lastCoord := time.Now()
	coordDeclaredDown := false
	for {
		select {
		case <-w.stop:
			return
		default:
		}
		tag, payload, err := w.base.RecvCtrl(0, w.cfg.Heartbeat)
		if errors.Is(err, transport.ErrCtrlTimeout) {
			info := w.info.Load()
			member := info != nil && info.node != nil
			if member && !coordDeclaredDown && time.Since(lastCoord) > 5*w.cfg.PeerTimeout {
				coordDeclaredDown = true
				w.base.Interrupt(&transport.PeerDownError{
					Rank: 0, Cause: fmt.Errorf("no coordinator traffic for %v", time.Since(lastCoord)),
				})
			}
			continue
		}
		if err != nil {
			close(w.ctrlDead) // endpoint closed: no fence will ever arrive
			return
		}
		lastCoord = time.Now()
		coordDeclaredDown = false
		switch tag.Kind() {
		case transport.KindPing:
			info := w.info.Load()
			prog := int(w.progress.Load())
			waiting := -1
			if info != nil && info.node != nil {
				if v := info.node.WaitingOn(); v >= 0 && v < len(info.members) {
					waiting = info.members[v]
				}
			}
			pong := transport.MakeTagE(transport.KindPong, tag.Epoch(), 0, 0, w.base.Rank())
			//dnnlint:ignore transerr pong loss is indistinguishable from ping loss; the next heartbeat retries
			_ = w.base.SendCtrl(0, pong, []float32{itof(prog), itof(waiting)})
		case transport.KindFence:
			f := &fenceOrder{epoch: tag.Epoch(), iter: tag.Iter(), members: decodeMembers(payload)}
			adopted := w.adopted.Load()
			if int64(f.epoch) <= adopted {
				// Re-sent fence this rank already adopted: the ack was
				// shed, so answer again (members only; an evictee has
				// nothing to ack).
				if int64(f.epoch) == adopted && containsRank(f.members, w.base.Rank()) {
					ackTag := transport.MakeTagE(transport.KindAck, f.epoch, f.iter, 0, w.base.Rank())
					//dnnlint:ignore transerr ack re-send mirrors the fence re-send it answers
					_ = w.base.SendCtrl(0, ackTag, nil)
				}
				continue
			}
			w.mu.Lock()
			if w.pending == nil || w.pending.epoch < f.epoch {
				w.pending = f
			}
			w.mu.Unlock()
			select {
			case w.fenceCh <- struct{}{}:
			default:
			}
			w.base.Interrupt(errFencePending)
		}
	}
}
