package dist

import (
	"reflect"
	"testing"
)

func TestTreeParentChildInverse(t *testing.T) {
	for _, size := range []int{1, 2, 3, 4, 7, 8, 16} {
		for _, fanout := range []int{1, 2, 3, 7} {
			tr := NewTree(size, fanout)
			if tr.Parent(0) != -1 {
				t.Fatalf("size %d fanout %d: root has parent %d", size, fanout, tr.Parent(0))
			}
			seen := map[int]bool{0: true}
			for r := 0; r < size; r++ {
				for _, c := range tr.Children(r) {
					if tr.Parent(c) != r {
						t.Fatalf("size %d fanout %d: Parent(%d)=%d, want %d", size, fanout, c, tr.Parent(c), r)
					}
					if seen[c] {
						t.Fatalf("size %d fanout %d: rank %d has two parents", size, fanout, c)
					}
					seen[c] = true
				}
				if len(tr.Children(r)) > fanout {
					t.Fatalf("size %d fanout %d: rank %d has %d children", size, fanout, r, len(tr.Children(r)))
				}
			}
			if len(seen) != size {
				t.Fatalf("size %d fanout %d: %d ranks reachable, want %d", size, fanout, len(seen), size)
			}
		}
	}
}

func TestTreePreorderCoversSubtreeOnce(t *testing.T) {
	tr := NewTree(7, 2)
	// Heap-numbered binary tree over 7: 0→(1,2), 1→(3,4), 2→(5,6).
	if got := tr.Preorder(0); !reflect.DeepEqual(got, []int{0, 1, 3, 4, 2, 5, 6}) {
		t.Fatalf("Preorder(0) = %v", got)
	}
	if got := tr.Preorder(1); !reflect.DeepEqual(got, []int{1, 3, 4}) {
		t.Fatalf("Preorder(1) = %v", got)
	}
	if got := tr.Preorder(5); !reflect.DeepEqual(got, []int{5}) {
		t.Fatalf("Preorder(5) = %v", got)
	}
}

func TestTreeDepths(t *testing.T) {
	cases := []struct{ size, fanout, want int }{
		{1, 2, 0}, {2, 2, 1}, {4, 2, 2}, {7, 2, 2}, {8, 2, 3}, {4, 3, 1}, {4, 1, 3},
	}
	for _, c := range cases {
		if got := NewTree(c.size, c.fanout).Depth(); got != c.want {
			t.Errorf("Depth(size=%d, fanout=%d) = %d, want %d", c.size, c.fanout, got, c.want)
		}
	}
}
