package core

import (
	"math"
	"testing"

	"coarsegrain/internal/blob"
	"coarsegrain/internal/layers"
	"coarsegrain/internal/rng"
)

// buildConv creates a deterministic convolution layer with its blobs.
func buildConv(t *testing.T, seed uint64) (*layers.Convolution, []*blob.Blob, []*blob.Blob) {
	t.Helper()
	l, err := layers.NewConvolution("conv", layers.ConvConfig{
		NumOutput: 4, Kernel: 3, Pad: 1,
		WeightFiller: layers.GaussianFiller{Std: 0.2}, RNG: rng.New(seed, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(seed, 2)
	bottom := blob.New(6, 3, 8, 8)
	for i := range bottom.Data() {
		bottom.Data()[i] = r.Range(-1, 1)
	}
	tops := []*blob.Blob{blob.New()}
	if err := l.SetUp([]*blob.Blob{bottom}, tops); err != nil {
		t.Fatal(err)
	}
	return l, []*blob.Blob{bottom}, tops
}

func seedTopDiff(tops []*blob.Blob, seed uint64) {
	r := rng.New(seed, 3)
	for i := range tops[0].Diff() {
		tops[0].Diff()[i] = r.Range(-1, 1)
	}
}

func maxAbsDiff(a, b []float32) float64 {
	var m float64
	for i := range a {
		if d := math.Abs(float64(a[i] - b[i])); d > m {
			m = d
		}
	}
	return m
}

func TestEngineNames(t *testing.T) {
	for _, tc := range []struct {
		e    Engine
		name string
		w    int
	}{
		{NewSequential(), "sequential", 1},
		{NewCoarse(4), "coarse", 4},
		{NewFine(4), "fine", 4},
		{NewTuned(4), "tuned", 4},
	} {
		if tc.e.Name() != tc.name || tc.e.Workers() != tc.w {
			t.Fatalf("engine %T: name %q workers %d", tc.e, tc.e.Name(), tc.e.Workers())
		}
		tc.e.Close()
	}
}

// Coarse forward must be bit-identical to sequential for any worker count:
// forward has no reductions, only disjoint writes.
func TestCoarseForwardBitIdentical(t *testing.T) {
	lRef, botRef, topRef := buildConv(t, 42)
	NewSequential().Forward(lRef, botRef, topRef)
	for _, w := range []int{1, 2, 3, 7, 16} {
		l, bot, top := buildConv(t, 42)
		e := NewCoarse(w)
		e.Forward(l, bot, top)
		e.Close()
		for i := range topRef[0].Data() {
			if top[0].Data()[i] != topRef[0].Data()[i] {
				t.Fatalf("workers=%d: forward differs at %d", w, i)
			}
		}
	}
}

// Coarse backward with ordered reduction: bottom diffs bit-identical
// (disjoint writes); parameter gradients equal to sequential within
// float-summation tolerance, and bit-deterministic for a fixed worker
// count.
func TestCoarseBackwardMatchesSequential(t *testing.T) {
	lRef, botRef, topRef := buildConv(t, 7)
	seq := NewSequential()
	seq.Forward(lRef, botRef, topRef)
	seedTopDiff(topRef, 7)
	for _, p := range lRef.Params() {
		p.ZeroDiff()
	}
	seq.Backward(lRef, botRef, topRef)

	for _, w := range []int{2, 4, 8} {
		l, bot, top := buildConv(t, 7)
		e := NewCoarse(w)
		e.Forward(l, bot, top)
		seedTopDiff(top, 7)
		for _, p := range l.Params() {
			p.ZeroDiff()
		}
		e.Backward(l, bot, top)

		if d := maxAbsDiff(bot[0].Diff(), botRef[0].Diff()); d != 0 {
			t.Fatalf("workers=%d: bottom diff differs by %g (must be exact)", w, d)
		}
		for pi := range l.Params() {
			if d := maxAbsDiff(l.Params()[pi].Diff(), lRef.Params()[pi].Diff()); d > 1e-4 {
				t.Fatalf("workers=%d: param %d grad differs by %g", w, pi, d)
			}
		}

		// Re-run with the same worker count: must be bit-identical
		// (the ordered reduction's determinism guarantee).
		l2, bot2, top2 := buildConv(t, 7)
		e2 := NewCoarse(w)
		e2.Forward(l2, bot2, top2)
		seedTopDiff(top2, 7)
		for _, p := range l2.Params() {
			p.ZeroDiff()
		}
		e2.Backward(l2, bot2, top2)
		for pi := range l.Params() {
			if d := maxAbsDiff(l.Params()[pi].Diff(), l2.Params()[pi].Diff()); d != 0 {
				t.Fatalf("workers=%d: ordered reduction not deterministic (diff %g)", w, d)
			}
		}
		e.Close()
		e2.Close()
	}
}

func TestTreeReductionCloseToOrdered(t *testing.T) {
	lRef, botRef, topRef := buildConv(t, 9)
	eo := NewCoarseWithReduction(4, OrderedReduction)
	eo.Forward(lRef, botRef, topRef)
	seedTopDiff(topRef, 9)
	for _, p := range lRef.Params() {
		p.ZeroDiff()
	}
	eo.Backward(lRef, botRef, topRef)
	eo.Close()

	l, bot, top := buildConv(t, 9)
	et := NewCoarseWithReduction(4, TreeReduction)
	if et.Reduction() != TreeReduction {
		t.Fatal("reduction mode lost")
	}
	et.Forward(l, bot, top)
	seedTopDiff(top, 9)
	for _, p := range l.Params() {
		p.ZeroDiff()
	}
	et.Backward(l, bot, top)
	et.Close()
	for pi := range l.Params() {
		if d := maxAbsDiff(l.Params()[pi].Diff(), lRef.Params()[pi].Diff()); d > 1e-4 {
			t.Fatalf("tree reduction param %d deviates by %g", pi, d)
		}
	}
}

func TestFineAndTunedMatchSequential(t *testing.T) {
	lRef, botRef, topRef := buildConv(t, 11)
	seq := NewSequential()
	seq.Forward(lRef, botRef, topRef)
	seedTopDiff(topRef, 11)
	for _, p := range lRef.Params() {
		p.ZeroDiff()
	}
	seq.Backward(lRef, botRef, topRef)

	for _, mk := range []func() Engine{
		func() Engine { return NewFine(4) },
		func() Engine { return NewTuned(4) },
	} {
		e := mk()
		l, bot, top := buildConv(t, 11)
		e.Forward(l, bot, top)
		if d := maxAbsDiff(top[0].Data(), topRef[0].Data()); d > 1e-4 {
			t.Fatalf("%s: forward deviates by %g", e.Name(), d)
		}
		seedTopDiff(top, 11)
		for _, p := range l.Params() {
			p.ZeroDiff()
		}
		e.Backward(l, bot, top)
		if d := maxAbsDiff(bot[0].Diff(), botRef[0].Diff()); d > 1e-4 {
			t.Fatalf("%s: bottom grad deviates by %g", e.Name(), d)
		}
		for pi := range l.Params() {
			if d := maxAbsDiff(l.Params()[pi].Diff(), lRef.Params()[pi].Diff()); d > 1e-3 {
				t.Fatalf("%s: param %d grad deviates by %g", e.Name(), pi, d)
			}
		}
		e.Close()
	}
}

// Gradients must ACCUMULATE across Backward calls under every engine (the
// solver zeroes them once per iteration, not per layer call).
func TestBackwardAccumulates(t *testing.T) {
	for _, mk := range []func() Engine{
		func() Engine { return NewSequential() },
		func() Engine { return NewCoarse(3) },
		func() Engine { return NewFine(3) },
		func() Engine { return NewTuned(3) },
	} {
		e := mk()
		l, bot, top := buildConv(t, 13)
		e.Forward(l, bot, top)
		seedTopDiff(top, 13)
		for _, p := range l.Params() {
			p.ZeroDiff()
		}
		e.Backward(l, bot, top)
		once := append([]float32(nil), l.Params()[0].Diff()...)
		e.Backward(l, bot, top)
		for i := range once {
			want := 2 * once[i]
			got := l.Params()[0].Diff()[i]
			if math.Abs(float64(got-want)) > 1e-3*math.Max(1, math.Abs(float64(want))) {
				t.Fatalf("%s: gradient did not accumulate: %v vs 2*%v", e.Name(), got, once[i])
			}
		}
		e.Close()
	}
}

func TestScratchBytesGrowsWithWorkers(t *testing.T) {
	l, bot, top := buildConv(t, 17)
	e := NewCoarse(4)
	defer e.Close()
	if e.ScratchBytes() != 0 {
		t.Fatal("scratch before any backward should be 0")
	}
	e.Forward(l, bot, top)
	seedTopDiff(top, 17)
	e.Backward(l, bot, top)
	sb := e.ScratchBytes()
	if sb == 0 {
		t.Fatal("scratch after backward should be > 0")
	}
	// Param storage: (4*3*3*3 + 4) floats * 4 bytes (diff-only) * 4 ranks.
	paramFloats := int64(4*3*3*3 + 4)
	want := paramFloats * 4 * 4
	if sb != want {
		t.Fatalf("scratch = %d bytes, want %d", sb, want)
	}
	// Reuse across layers: a second backward must not grow the arena.
	e.Backward(l, bot, top)
	if e.ScratchBytes() != sb {
		t.Fatalf("scratch grew on reuse: %d -> %d", sb, e.ScratchBytes())
	}
}

// A layer whose range body panics must not wedge the coarse engine.
type panicLayer struct {
	layers.Layer
	armed bool
}

func (p *panicLayer) ForwardRange(lo, hi int, bottom, top []*blob.Blob) {
	if p.armed {
		panic("injected failure")
	}
	p.Layer.ForwardRange(lo, hi, bottom, top)
}

func TestEngineSurvivesLayerPanic(t *testing.T) {
	l, bot, top := buildConv(t, 19)
	pl := &panicLayer{Layer: l, armed: true}
	e := NewCoarse(4)
	defer e.Close()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic not propagated")
			}
		}()
		e.Forward(pl, bot, top)
	}()
	pl.armed = false
	e.Forward(pl, bot, top) // must not hang or panic
}

// Layers without parameters take the no-privatization backward path.
func TestCoarseBackwardNoParams(t *testing.T) {
	r := rng.New(23, 1)
	l, err := layers.NewPooling("p", layers.PoolConfig{Method: layers.MaxPool, Kernel: 2, Stride: 2})
	if err != nil {
		t.Fatal(err)
	}
	bottom := blob.New(4, 2, 6, 6)
	for i := range bottom.Data() {
		bottom.Data()[i] = r.Range(-1, 1)
	}
	tops := []*blob.Blob{blob.New()}
	if err := l.SetUp([]*blob.Blob{bottom}, tops); err != nil {
		t.Fatal(err)
	}
	seq := NewSequential()
	seq.Forward(l, []*blob.Blob{bottom}, tops)
	for i := range tops[0].Diff() {
		tops[0].Diff()[i] = r.Range(-1, 1)
	}
	seq.Backward(l, []*blob.Blob{bottom}, tops)
	ref := append([]float32(nil), bottom.Diff()...)

	e := NewCoarse(3)
	defer e.Close()
	bottom.ZeroDiff()
	e.Backward(l, []*blob.Blob{bottom}, tops)
	if d := maxAbsDiff(bottom.Diff(), ref); d != 0 {
		t.Fatalf("pool coarse backward differs by %g", d)
	}
	if e.ScratchBytes() != 0 {
		t.Fatal("param-less backward should not allocate scratch")
	}
}

func TestReductionModeString(t *testing.T) {
	if OrderedReduction.String() != "ordered" || TreeReduction.String() != "tree" {
		t.Fatal("ReductionMode.String wrong")
	}
}
