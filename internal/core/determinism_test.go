package core

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// TestBackwardNeverRoutesThroughForDynamic pins the structural invariant
// behind convergence invariance (ROADMAP: bit-identical gradients at any
// worker count): the gradient path of the coarse engine must never hand
// work to Pool.ForDynamic, whose chunk-to-rank mapping changes run to
// run. Dynamic scheduling inside Backward is instead inlined over the
// *private* per-rank gradients (the atomic-counter loop inside Region),
// and the cross-rank merge goes through Ordered/ReduceTree only. If a
// refactor reroutes Backward through ForDynamic, gradients stay
// race-free but stop being deterministic — a bug no unit test on values
// reliably catches, so we assert the shape of the code itself.
func TestBackwardNeverRoutesThroughForDynamic(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "coarse.go", nil, 0)
	if err != nil {
		t.Fatalf("parse coarse.go: %v", err)
	}

	// Pool methods the gradient path is allowed to use. ForDynamic is
	// deliberately absent; parFor (which may dispatch to ForDynamic for
	// rank-agnostic forward/bottom-diff loops) is allowed only in the
	// no-params early return, before any gradient accumulation exists.
	allowed := map[string]bool{
		"Region": true, "Ordered": true, "OrderedSlices": true, "ReduceTree": true, "Workers": true,
	}

	var backward *ast.FuncDecl
	for _, d := range f.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Name.Name != "Backward" || fd.Recv == nil {
			continue
		}
		backward = fd
	}
	if backward == nil {
		t.Fatal("coarse.go no longer declares a Backward method")
	}

	ast.Inspect(backward.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if sel.Sel.Name == "ForDynamic" {
			pos := fset.Position(call.Pos())
			t.Errorf("%s: Coarse.Backward calls ForDynamic: dynamic chunk-to-rank "+
				"assignment makes the gradient reduction order vary between runs", pos)
		}
		// Any e.pool.<Method> call must come from the allowed set.
		if inner, ok := sel.X.(*ast.SelectorExpr); ok && inner.Sel.Name == "pool" {
			if !allowed[sel.Sel.Name] {
				pos := fset.Position(call.Pos())
				t.Errorf("%s: Coarse.Backward calls pool.%s, outside the deterministic "+
					"set %v", pos, sel.Sel.Name, []string{"Region", "Ordered", "ReduceTree", "Workers"})
			}
		}
		return true
	})
}

// TestCoarseDefaultsToStaticSchedule pins the runtime side of the same
// contract: the default engine construction must select the static
// schedule the paper's convergence argument assumes.
func TestCoarseDefaultsToStaticSchedule(t *testing.T) {
	e := NewCoarse(4)
	defer e.Close()
	if e.Schedule() != StaticSchedule {
		t.Fatalf("NewCoarse schedule = %v, want StaticSchedule", e.Schedule())
	}
}
