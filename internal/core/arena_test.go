package core

import "testing"

func TestArenaReusesBestFit(t *testing.T) {
	var a arena
	big := a.take([]int{100})
	small := a.take([]int{10})
	a.put(big)
	a.put(small)
	// A request for 8 elements must reuse the small blob, not the big one.
	got := a.take([]int{8})
	if got != small {
		t.Fatal("arena did not pick the best-fitting free blob")
	}
	if got.Count() != 8 {
		t.Fatalf("reshaped count %d", got.Count())
	}
}

func TestArenaGrowsLargestInsteadOfAllocating(t *testing.T) {
	var a arena
	b1 := a.take([]int{10})
	b2 := a.take([]int{20})
	a.put(b1)
	a.put(b2)
	// Nothing fits 50: the largest free blob must be grown, keeping the
	// blob count at 2 (steady-state memory = largest layer, §3.2.1).
	got := a.take([]int{50})
	if got != b2 {
		t.Fatal("arena did not grow the largest free blob")
	}
	if len(a.all) != 2 {
		t.Fatalf("arena allocated a new blob: %d total", len(a.all))
	}
}

func TestArenaZeroesDiffOnTake(t *testing.T) {
	var a arena
	b := a.take([]int{4})
	b.Diff()[2] = 42
	a.put(b)
	b2 := a.take([]int{4})
	for _, v := range b2.Diff() {
		if v != 0 {
			t.Fatal("reused blob not zeroed")
		}
	}
}

func TestArenaBytesAccounting(t *testing.T) {
	var a arena
	b := a.take([]int{100})
	if a.bytes() != 400 { // diff-only: one float32 buffer
		t.Fatalf("bytes = %d, want 400", a.bytes())
	}
	a.put(b)
	if a.bytes() != 400 {
		t.Fatal("free blobs must stay accounted")
	}
}
