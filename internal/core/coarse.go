package core

import (
	"sync/atomic"
	"time"

	"coarsegrain/internal/blob"
	"coarsegrain/internal/layers"
	"coarsegrain/internal/par"
	"coarsegrain/internal/trace"
)

// ReductionMode selects how privatized gradients are merged.
type ReductionMode int

const (
	// OrderedReduction merges private gradients in worker-rank order
	// (Algorithm 5's `omp for ordered`), giving a bit-deterministic result
	// for a fixed worker count — the mode the paper recommends while a
	// network is being tuned and debugged.
	OrderedReduction ReductionMode = iota
	// TreeReduction merges pairwise in parallel (the "reduction-based
	// solution" the paper mentions as valid once convergence is ensured).
	// Cheaper at high worker counts, but float non-associativity means the
	// result may differ in the last bits between runs with different
	// worker counts.
	TreeReduction
)

// String implements fmt.Stringer.
func (m ReductionMode) String() string {
	if m == TreeReduction {
		return "tree"
	}
	return "ordered"
}

// Schedule selects the loop-scheduling policy of the coarse engine.
type Schedule int

const (
	// StaticSchedule is the OpenMP default the paper uses: contiguous
	// ceil(n/P) chunks with a fixed work-to-rank mapping, which the
	// ordered reduction turns into deterministic training.
	StaticSchedule Schedule = iota
	// DynamicSchedule claims chunks from a shared counter. It absorbs
	// irregular iteration costs but loses the fixed mapping, so gradient
	// accumulation order (and hence the last float bits of the loss
	// trace) varies between runs — provided as an ablation.
	DynamicSchedule
)

// String implements fmt.Stringer.
func (s Schedule) String() string {
	if s == DynamicSchedule {
		return "dynamic"
	}
	return "static"
}

// Coarse is the paper's contribution: batch-level (coarse-grain)
// parallelization of the generic layer loop nest.
//
// Forward (Algorithm 4): the serial prepare hook runs first (data layers
// load their batch here, sequentially, exactly as in Caffe); then the
// layer's coalesced iteration space is statically scheduled across the
// worker team; the serial finish hook closes the pass.
//
// Backward (Algorithm 5): each worker receives private, zero-initialized
// gradient blobs for the layer's parameters ("object privatization"),
// processes its static chunk, and the private gradients are merged into
// the shared parameter diffs. The default OrderedReduction merge is
// itself parallel: the layer's parameters are viewed as one flat element
// space, sliced across the team with par.Pool.OrderedSlices, and each
// worker folds ranks 0..P-1 *in rank order* over its own slice — every
// element keeps the exact accumulation order of the serial ordered
// merge, so the result is bit-deterministic for a fixed worker count
// while the reduce's critical path shrinks by a factor of P. All
// fork/join edges run on the pool's spin-then-park barrier (par.Pool),
// not channels. The same rank-ordered fold is what internal/dist
// stretches across process boundaries (DISTRIBUTED.md).
//
// The engine is network-agnostic: it never inspects layer types, only the
// generic extents/ranges — which is the property that makes the
// parallelization immediately available for new layer types (§3.3).
type Coarse struct {
	pool      *par.Pool
	arenas    []arena // one per worker rank
	reduction ReductionMode
	schedule  Schedule
	tracer    *trace.Tracer
}

// NewCoarse creates a coarse-grain engine with the given worker count.
func NewCoarse(workers int) *Coarse {
	p := par.NewPool(workers)
	return &Coarse{pool: p, arenas: make([]arena, p.Workers())}
}

// NewCoarseWithReduction creates a coarse engine using the given merge
// strategy (OrderedReduction is the default of NewCoarse).
func NewCoarseWithReduction(workers int, mode ReductionMode) *Coarse {
	e := NewCoarse(workers)
	e.reduction = mode
	return e
}

// NewCoarseWithSchedule creates a coarse engine using the given loop
// scheduling policy (StaticSchedule is the default of NewCoarse).
func NewCoarseWithSchedule(workers int, sched Schedule) *Coarse {
	e := NewCoarse(workers)
	e.schedule = sched
	return e
}

// Name implements Engine.
func (e *Coarse) Name() string { return "coarse" }

// SetTracer attaches a span tracer to the engine and its worker pool:
// every worksharing band becomes a per-worker span, and the gradient
// merge of Algorithm 5 gets its own reduce span (the serial section the
// paper's overhead analysis singles out). Attach before training; nil
// detaches.
func (e *Coarse) SetTracer(t *trace.Tracer) {
	e.tracer = t
	e.pool.SetTracer(t)
}

// Schedule returns the configured loop scheduling policy.
func (e *Coarse) Schedule() Schedule { return e.schedule }

// parFor dispatches a worksharing loop under the configured schedule.
func (e *Coarse) parFor(n int, body func(lo, hi, rank int)) {
	if e.schedule == DynamicSchedule {
		e.pool.ForDynamic(n, par.DefaultDynamicChunk(n, e.pool.Workers()), body)
		return
	}
	e.pool.For(n, body)
}

// Workers implements Engine.
func (e *Coarse) Workers() int { return e.pool.Workers() }

// Reduction returns the configured merge strategy.
func (e *Coarse) Reduction() ReductionMode { return e.reduction }

// Forward implements Engine.
func (e *Coarse) Forward(l layers.Layer, bottom, top []*blob.Blob) {
	forwardHooks(l, bottom, top, func() {
		if n := l.ForwardExtent(); n > 0 {
			e.parFor(n, func(lo, hi, _ int) {
				l.ForwardRange(lo, hi, bottom, top)
			})
		}
	})
}

// Backward implements Engine.
func (e *Coarse) Backward(l layers.Layer, bottom, top []*blob.Blob) {
	n := l.BackwardExtent()
	if n == 0 {
		return
	}
	params := l.Params()
	workers := e.pool.Workers()
	if len(params) == 0 || workers == 1 {
		// Nothing to privatize: bottom-diff writes are disjoint by the
		// layer contract, so the plain parallel loop is already race-free.
		backwardHooks(l, bottom, top, func() {
			e.parFor(n, func(lo, hi, _ int) {
				l.BackwardRange(lo, hi, bottom, top, params)
			})
		})
		return
	}
	if p, ok := l.(layers.BackwardPreparer); ok {
		p.BackwardPrepare(bottom, top)
	}

	// Object privatization (Algorithm 5 lines 3-5): per-rank private
	// gradient blobs, zero-initialized inside the parallel region.
	privs := make([][]*blob.Blob, workers)
	var next int64
	dynChunk := par.DefaultDynamicChunk(n, workers)
	e.pool.Region(func(rank int) {
		pg := make([]*blob.Blob, len(params))
		for i, p := range params {
			pg[i] = e.arenas[rank].take(p.Shape())
		}
		privs[rank] = pg
		if e.schedule == DynamicSchedule {
			for {
				lo := int(atomic.AddInt64(&next, int64(dynChunk))) - dynChunk
				if lo >= n {
					return
				}
				hi := lo + dynChunk
				if hi > n {
					hi = n
				}
				l.BackwardRange(lo, hi, bottom, top, pg)
			}
		}
		lo, hi := par.Chunk(n, workers, rank)
		if lo < hi {
			l.BackwardRange(lo, hi, bottom, top, pg)
		}
	})

	// Gradient merge (Algorithm 5 lines 22-23).
	var mergeStart time.Time
	if e.tracer.Enabled() {
		mergeStart = time.Now()
	}
	switch e.reduction {
	case OrderedReduction:
		// Element-parallel ordered merge: view the layer's params as one
		// flat element space, slice it across workers, and let each worker
		// fold ranks 0..P-1 in rank order over its own slice
		// (par.OrderedSlices). Every element keeps the exact accumulation
		// order of the serial ordered merge — the result stays
		// bit-deterministic — while the reduce's critical path shrinks
		// from O(|params|·P) to O(|params|·P/P).
		offsets := make([]int, len(params)+1)
		for i, p := range params {
			offsets[i+1] = offsets[i] + p.Count()
		}
		if e.tracer.Enabled() {
			// Label the per-worker merge spans as reduce-phase work so the
			// trace report shows the reduce section scaling with P.
			e.tracer.SetScope(l.Name(), trace.PhaseReduce)
		}
		e.pool.OrderedSlices(offsets[len(params)], func(lo, hi, rank int) {
			pg := privs[rank]
			for i, p := range params {
				plo, phi := lo-offsets[i], hi-offsets[i]
				if plo < 0 {
					plo = 0
				}
				if c := p.Count(); phi > c {
					phi = c
				}
				if plo < phi {
					p.AccumulateDiffRange(pg[i], plo, phi)
				}
			}
		})
	case TreeReduction:
		e.pool.ReduceTree(func(dst, src int) {
			for i := range params {
				privs[dst][i].AccumulateDiffFrom(privs[src][i])
			}
		})
		for i, p := range params {
			p.AccumulateDiffFrom(privs[0][i])
		}
	}
	if tr := e.tracer; tr.Enabled() {
		var elems int
		for _, p := range params {
			elems += p.Count()
		}
		tr.Record(trace.Span{
			Name: l.Name(), Phase: trace.PhaseReduce, Rank: trace.RankDriver, Band: -1,
			Lo: 0, Hi: elems, Start: tr.Stamp(mergeStart), Dur: time.Since(mergeStart),
		})
	}

	for rank, pg := range privs {
		for _, b := range pg {
			e.arenas[rank].put(b)
		}
	}
	if f, ok := l.(layers.BackwardFinisher); ok {
		f.BackwardFinish(bottom, top)
	}
}

// ScratchBytes implements Engine: the privatization overhead of §3.2.1.
func (e *Coarse) ScratchBytes() int64 {
	var n int64
	for i := range e.arenas {
		n += e.arenas[i].bytes()
	}
	return n
}

// Close implements Engine.
func (e *Coarse) Close() { e.pool.Close() }
