package core

import "coarsegrain/internal/blob"

// arena hands out per-worker private gradient blobs and recycles them
// across layers. The paper's memory analysis (§3.2.1) relies on exactly
// this reuse: "the temporal storage can be reused across layers, so that
// the total extra memory is determined by the layer with more
// coefficients". One arena serves one worker rank, so takes/puts never
// race.
type arena struct {
	free []*blob.Blob
	all  []*blob.Blob // every blob ever created, for memory accounting
}

// take returns a blob reshaped to shape with a zeroed diff. It prefers the
// smallest free blob whose capacity fits, growing one only when necessary.
func (a *arena) take(shape []int) *blob.Blob {
	need := 1
	for _, d := range shape {
		need *= d
	}
	best := -1
	for i, b := range a.free {
		if b.Cap() >= need && (best == -1 || b.Cap() < a.free[best].Cap()) {
			best = i
		}
	}
	var b *blob.Blob
	if best >= 0 {
		b = a.free[best]
		a.free = append(a.free[:best], a.free[best+1:]...)
	} else if len(a.free) > 0 {
		// Grow the largest free blob rather than allocating another one,
		// keeping the steady-state footprint at "largest layer wins".
		largest := 0
		for i, fb := range a.free {
			if fb.Cap() > a.free[largest].Cap() {
				largest = i
			}
		}
		b = a.free[largest]
		a.free = append(a.free[:largest], a.free[largest+1:]...)
	} else {
		b = blob.NewDiffOnly()
		a.all = append(a.all, b)
	}
	b.Reshape(shape...)
	b.ZeroDiff()
	return b
}

// put returns a blob to the free list.
func (a *arena) put(b *blob.Blob) { a.free = append(a.free, b) }

// bytes reports the total capacity held by the arena.
func (a *arena) bytes() int64 {
	var n int64
	for _, b := range a.all {
		n += b.MemoryBytes()
	}
	return n
}
