// Package core implements the paper's primary contribution: the execution
// engines that parallelize a layer's forward and backward passes.
//
// Four engines mirror the paper's four measured configurations:
//
//   - Sequential — the serial baseline every speedup is measured against.
//   - Coarse — the coarse-grain, batch-level parallelization (§3): the
//     layer's coalesced loop is statically scheduled across a worker team,
//     parameter gradients are privatized per worker and merged with an
//     ordered reduction (Algorithms 4 and 5). This engine is
//     *network-agnostic*: it only uses the generic Layer interface, never
//     a layer-specific kernel.
//   - Fine — the plain-GPU analogue: layers providing a fine-grain
//     implementation (parallelism inside the BLAS/inner loops, §3.1.1/
//     §3.1.2) use it; the rest run serially.
//   - Tuned — the cuDNN analogue: like Fine, but layers providing a
//     restructured optimized kernel (im2col+GEMM convolution) use that.
//
// Engines are deliberately unaware of networks and solvers; package net
// composes them.
//
// # Observability
//
// Engines that run parallel work accept a span tracer via an optional
// SetTracer(*trace.Tracer) method (package net propagates it): Coarse
// traces its worker regions and gradient reductions, Fine and Tuned
// forward the tracer to their pool so BLAS-level tile bands appear as
// worker spans. Sequential runs on the driver alone, so only the
// driver-side layer spans recorded by package net exist for it. A nil
// tracer costs nothing; see OBSERVABILITY.md.
package core

import (
	"coarsegrain/internal/blob"
	"coarsegrain/internal/layers"
)

// Engine executes single-layer passes under some parallelization strategy.
type Engine interface {
	// Name identifies the strategy ("sequential", "coarse", ...).
	Name() string
	// Workers returns the size of the worker team (1 for sequential).
	Workers() int
	// Forward runs l's forward pass (prepare hook, parallel region,
	// finish hook).
	Forward(l layers.Layer, bottom, top []*blob.Blob)
	// Backward runs l's backward pass. Parameter gradients are
	// ACCUMULATED into l.Params() diffs; callers (the solver) zero them
	// at the start of an iteration.
	Backward(l layers.Layer, bottom, top []*blob.Blob)
	// ScratchBytes reports the engine's private-storage footprint — the
	// paper's §3.2.1 memory-overhead metric. Zero for engines without
	// privatization.
	ScratchBytes() int64
	// Close releases the worker team.
	Close()
}

// forwardHooks runs the serial prepare hook, the supplied parallel body,
// and the serial finish hook — the common engine skeleton.
func forwardHooks(l layers.Layer, bottom, top []*blob.Blob, body func()) {
	if p, ok := l.(layers.ForwardPreparer); ok {
		p.ForwardPrepare(bottom, top)
	}
	body()
	if f, ok := l.(layers.ForwardFinisher); ok {
		f.ForwardFinish(bottom, top)
	}
}

// backwardHooks is the backward-pass counterpart of forwardHooks.
func backwardHooks(l layers.Layer, bottom, top []*blob.Blob, body func()) {
	if p, ok := l.(layers.BackwardPreparer); ok {
		p.BackwardPrepare(bottom, top)
	}
	body()
	if f, ok := l.(layers.BackwardFinisher); ok {
		f.BackwardFinish(bottom, top)
	}
}
