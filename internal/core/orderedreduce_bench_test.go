package core

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"coarsegrain/internal/blob"
	"coarsegrain/internal/par"
	"coarsegrain/internal/rng"
)

// BenchmarkOrderedReduce compares the two implementations of Algorithm
// 5's ordered gradient merge on a LeNet-sized parameter set (~431k
// elements): "sequential" is the historical rank-at-a-time
// Pool.Ordered fold (serial section O(|params|·P)); "slices" is the
// element-parallel Pool.OrderedSlices fold that Coarse.Backward now
// uses.
//
// ns/op is wall time, which on a host with fewer CPUs than P cannot
// show the parallel win (the folds serialize). critpath-ns/op is the
// per-iteration maximum of any single worker's fold time — the merge
// latency a machine with >= P free CPUs would observe — and is the
// number PERFORMANCE.md's reduction-scaling table quotes.
func BenchmarkOrderedReduce(b *testing.B) {
	shapes := [][]int{
		{20, 1, 5, 5}, {20}, // conv1
		{50, 20, 5, 5}, {50}, // conv2
		{500, 800}, {500}, // ip1
		{10, 500}, {10}, // ip2
	}
	for _, workers := range []int{1, 2, 4, 8} {
		params := make([]*blob.Blob, len(shapes))
		offsets := make([]int, len(shapes)+1)
		for i, s := range shapes {
			params[i] = blob.New(s...)
			offsets[i+1] = offsets[i] + params[i].Count()
		}
		total := offsets[len(shapes)]
		r := rng.New(uint64(workers), 5)
		privs := make([][]*blob.Blob, workers)
		for w := range privs {
			privs[w] = make([]*blob.Blob, len(shapes))
			for i, s := range shapes {
				privs[w][i] = blob.NewDiffOnly(s...)
				for j := range privs[w][i].Diff() {
					privs[w][i].Diff()[j] = r.Range(-1, 1)
				}
			}
		}
		pool := par.NewPool(workers)

		b.Run(fmt.Sprintf("sequential/P=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pool.Ordered(func(rank int) {
					for pi, p := range params {
						p.AccumulateDiffFrom(privs[rank][pi])
					}
				})
			}
		})

		b.Run(fmt.Sprintf("slices/P=%d", workers), func(b *testing.B) {
			chunk := (total + workers - 1) / workers
			sliceNs := make([]int64, workers)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pool.OrderedSlices(total, func(lo, hi, rank int) {
					start := time.Now()
					pg := privs[rank]
					for pi, p := range params {
						plo, phi := lo-offsets[pi], hi-offsets[pi]
						if plo < 0 {
							plo = 0
						}
						if c := p.Count(); phi > c {
							phi = c
						}
						if plo < phi {
							p.AccumulateDiffRange(pg[pi], plo, phi)
						}
					}
					atomic.AddInt64(&sliceNs[lo/chunk], int64(time.Since(start)))
				})
			}
			b.StopTimer()
			var crit int64
			for _, ns := range sliceNs {
				if ns > crit {
					crit = ns
				}
			}
			b.ReportMetric(float64(crit)/float64(b.N), "critpath-ns/op")
		})
		pool.Close()
	}
}
