package core

import (
	"coarsegrain/internal/blob"
	"coarsegrain/internal/layers"
	"coarsegrain/internal/par"
	"coarsegrain/internal/trace"
)

// Fine is the fine-grain engine, the analogue of the paper's "plain-GPU"
// configuration: parallelism lives *inside* each layer's linear-algebra
// kernels (§3.1.1 BLAS-level / §3.1.2 blob-level), which requires a
// per-layer fine-grain implementation — the recoding effort the paper
// contrasts with the network-agnostic coarse approach. Layers without a
// fine implementation fall back to serial execution.
//
// With tuned=true the engine becomes the cuDNN analogue: layers providing
// a restructured optimized kernel (TunedForwarder/TunedBackwarder — the
// im2col+GEMM convolution) use it in preference to the plain fine kernel.
type Fine struct {
	pool  *par.Pool
	tuned bool
}

// NewFine creates the plain fine-grain engine.
func NewFine(workers int) *Fine { return &Fine{pool: par.NewPool(workers)} }

// NewTuned creates the tuned fine-grain engine (cuDNN analogue).
func NewTuned(workers int) *Fine { return &Fine{pool: par.NewPool(workers), tuned: true} }

// Name implements Engine.
func (e *Fine) Name() string {
	if e.tuned {
		return "tuned"
	}
	return "fine"
}

// Workers implements Engine.
func (e *Fine) Workers() int { return e.pool.Workers() }

// SetTracer attaches a span tracer to the worker pool, so the fine
// kernels' BLAS-level bands (e.g. GemmParallel tile runs) appear as
// per-worker spans. Attach before training; nil detaches.
func (e *Fine) SetTracer(t *trace.Tracer) { e.pool.SetTracer(t) }

// Forward implements Engine.
func (e *Fine) Forward(l layers.Layer, bottom, top []*blob.Blob) {
	forwardHooks(l, bottom, top, func() {
		if e.tuned {
			if tf, ok := l.(layers.TunedForwarder); ok {
				tf.ForwardTuned(e.pool, bottom, top)
				return
			}
		}
		if ff, ok := l.(layers.FineForwarder); ok {
			ff.ForwardFine(e.pool, bottom, top)
			return
		}
		if n := l.ForwardExtent(); n > 0 {
			l.ForwardRange(0, n, bottom, top)
		}
	})
}

// Backward implements Engine.
func (e *Fine) Backward(l layers.Layer, bottom, top []*blob.Blob) {
	if e.tuned {
		if tb, ok := l.(layers.TunedBackwarder); ok {
			backwardHooks(l, bottom, top, func() { tb.BackwardTuned(e.pool, bottom, top) })
			return
		}
	}
	if fb, ok := l.(layers.FineBackwarder); ok {
		backwardHooks(l, bottom, top, func() { fb.BackwardFine(e.pool, bottom, top) })
		return
	}
	if n := l.BackwardExtent(); n > 0 {
		backwardHooks(l, bottom, top, func() {
			l.BackwardRange(0, n, bottom, top, l.Params())
		})
	}
}

// ScratchBytes implements Engine: the fine engines privatize nothing.
func (e *Fine) ScratchBytes() int64 { return 0 }

// Close implements Engine.
func (e *Fine) Close() { e.pool.Close() }
