package core

import (
	"testing"

	"coarsegrain/internal/blob"
	"coarsegrain/internal/layers"
	"coarsegrain/internal/rng"
)

// buildBN creates a BatchNorm layer over a random 4-D blob.
func buildBN(t *testing.T, seed uint64) (*layers.BatchNorm, []*blob.Blob, []*blob.Blob) {
	t.Helper()
	l, err := layers.NewBatchNorm("bn", layers.BNConfig{})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(seed, 5)
	bottom := blob.New(8, 3, 4, 4)
	for i := range bottom.Data() {
		bottom.Data()[i] = r.Range(-2, 2)
	}
	tops := []*blob.Blob{blob.New()}
	if err := l.SetUp([]*blob.Blob{bottom}, tops); err != nil {
		t.Fatal(err)
	}
	return l, []*blob.Blob{bottom}, tops
}

// BatchNorm exercises the backward prepare/finish hooks: the coarse
// engine must produce the same gradients as sequential, including the
// whole-batch reduction terms.
func TestBatchNormCoarseMatchesSequential(t *testing.T) {
	lRef, botRef, topRef := buildBN(t, 1)
	seq := NewSequential()
	seq.Forward(lRef, botRef, topRef)
	seedTopDiff(topRef, 1)
	for _, p := range lRef.Params() {
		p.ZeroDiff()
	}
	seq.Backward(lRef, botRef, topRef)

	for _, w := range []int{2, 4, 8} {
		l, bot, top := buildBN(t, 1)
		e := NewCoarse(w)
		e.Forward(l, bot, top)
		// Forward must be bit-identical: stats computed in the serial
		// prepare, normalization in disjoint ranges.
		for i := range topRef[0].Data() {
			if top[0].Data()[i] != topRef[0].Data()[i] {
				t.Fatalf("workers=%d: BN forward differs at %d", w, i)
			}
		}
		seedTopDiff(top, 1)
		for _, p := range l.Params() {
			p.ZeroDiff()
		}
		e.Backward(l, bot, top)
		if d := maxAbsDiff(bot[0].Diff(), botRef[0].Diff()); d != 0 {
			t.Fatalf("workers=%d: BN bottom grad differs by %g (must be exact: "+
				"reductions run in the serial prepare)", w, d)
		}
		for pi := range l.Params() {
			if d := maxAbsDiff(l.Params()[pi].Diff(), lRef.Params()[pi].Diff()); d > 1e-4 {
				t.Fatalf("workers=%d: BN param %d grad deviates by %g", w, pi, d)
			}
		}
		e.Close()
	}
}

func TestBatchNormFineEngineFallback(t *testing.T) {
	// BatchNorm has no fine kernel; the fine engine must fall back to the
	// sequential path with hooks intact.
	lRef, botRef, topRef := buildBN(t, 2)
	NewSequential().Forward(lRef, botRef, topRef)
	l, bot, top := buildBN(t, 2)
	e := NewFine(4)
	defer e.Close()
	e.Forward(l, bot, top)
	for i := range topRef[0].Data() {
		if top[0].Data()[i] != topRef[0].Data()[i] {
			t.Fatal("fine-engine BN forward differs")
		}
	}
	seedTopDiff(topRef, 2)
	seedTopDiff(top, 2)
	for _, p := range lRef.Params() {
		p.ZeroDiff()
	}
	for _, p := range l.Params() {
		p.ZeroDiff()
	}
	NewSequential().Backward(lRef, botRef, topRef)
	e.Backward(l, bot, top)
	if d := maxAbsDiff(bot[0].Diff(), botRef[0].Diff()); d != 0 {
		t.Fatalf("fine-engine BN backward differs by %g", d)
	}
}
