package core

import (
	"coarsegrain/internal/blob"
	"coarsegrain/internal/layers"
)

// Sequential executes every layer pass on the calling goroutine — the
// 1-thread baseline of the paper's evaluation.
type Sequential struct{}

// NewSequential creates the serial engine.
func NewSequential() *Sequential { return &Sequential{} }

// Name implements Engine.
func (*Sequential) Name() string { return "sequential" }

// Workers implements Engine.
func (*Sequential) Workers() int { return 1 }

// Forward implements Engine.
func (*Sequential) Forward(l layers.Layer, bottom, top []*blob.Blob) {
	forwardHooks(l, bottom, top, func() {
		if n := l.ForwardExtent(); n > 0 {
			l.ForwardRange(0, n, bottom, top)
		}
	})
}

// Backward implements Engine. Parameter gradients accumulate directly into
// the parameter blobs' diffs.
func (*Sequential) Backward(l layers.Layer, bottom, top []*blob.Blob) {
	n := l.BackwardExtent()
	if n == 0 {
		return
	}
	backwardHooks(l, bottom, top, func() {
		l.BackwardRange(0, n, bottom, top, l.Params())
	})
}

// ScratchBytes implements Engine.
func (*Sequential) ScratchBytes() int64 { return 0 }

// Close implements Engine.
func (*Sequential) Close() {}
