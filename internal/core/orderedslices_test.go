package core

import (
	"fmt"
	"math"
	"testing"

	"coarsegrain/internal/blob"
	"coarsegrain/internal/layers"
	"coarsegrain/internal/par"
	"coarsegrain/internal/rng"
)

// buildIP creates a deterministic LeNet-ip1-shaped inner-product layer.
func buildIP(t *testing.T, seed uint64) (layers.Layer, []*blob.Blob, []*blob.Blob) {
	t.Helper()
	l, err := layers.NewInnerProduct("ip", layers.IPConfig{
		NumOutput: 32, WeightFiller: layers.GaussianFiller{Std: 0.1}, RNG: rng.New(seed, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(seed, 2)
	bottom := blob.New(12, 50)
	for i := range bottom.Data() {
		bottom.Data()[i] = r.Range(-1, 1)
	}
	tops := []*blob.Blob{blob.New()}
	if err := l.SetUp([]*blob.Blob{bottom}, tops); err != nil {
		t.Fatal(err)
	}
	return l, []*blob.Blob{bottom}, tops
}

// referenceOrderedBackward reproduces Algorithm 5's serial ordered merge
// by hand, without the engine: run the layer's backward over each rank's
// static chunk into fresh zeroed private blobs, then fold the privates
// into the shared params with full-blob AccumulateDiffFrom in strictly
// increasing rank order. This is the accumulation order the ordered
// reduction has always guaranteed; the element-parallel merge must
// reproduce it bit-for-bit.
func referenceOrderedBackward(l layers.Layer, bottom, top []*blob.Blob, workers int) {
	n := l.BackwardExtent()
	params := l.Params()
	if p, ok := l.(layers.BackwardPreparer); ok {
		p.BackwardPrepare(bottom, top)
	}
	privs := make([][]*blob.Blob, workers)
	for r := 0; r < workers; r++ {
		pg := make([]*blob.Blob, len(params))
		for i, p := range params {
			pg[i] = blob.NewDiffOnly(p.Shape()...)
		}
		privs[r] = pg
		lo, hi := par.Chunk(n, workers, r)
		if lo < hi {
			l.BackwardRange(lo, hi, bottom, top, pg)
		}
	}
	for r := 0; r < workers; r++ {
		for i, p := range params {
			p.AccumulateDiffFrom(privs[r][i])
		}
	}
	if f, ok := l.(layers.BackwardFinisher); ok {
		f.BackwardFinish(bottom, top)
	}
}

// TestOrderedSlicesMergeBitIdenticalAcrossWorkers is the determinism
// table test for the element-parallel reduction: for LeNet-shaped conv
// and inner-product layers, the engine's merged gradients must be
// bit-identical to the serial rank-ordered reference at every worker
// count, and at P=1 bit-identical to the Sequential engine outright.
// (For P>1 no engine can be bit-equal to Sequential — chunked partials
// round differently than one serial chain; DESIGN.md §Algorithm 5 —
// so cross-P agreement is checked at float-summation tolerance, exactly
// as the training-level contract states.)
func TestOrderedSlicesMergeBitIdenticalAcrossWorkers(t *testing.T) {
	builders := []struct {
		name  string
		build func(t *testing.T, seed uint64) (layers.Layer, []*blob.Blob, []*blob.Blob)
		seed  uint64
	}{
		{"conv", func(t *testing.T, seed uint64) (layers.Layer, []*blob.Blob, []*blob.Blob) {
			l, bot, top := buildConv(t, seed)
			return l, bot, top
		}, 11},
		{"ip", buildIP, 13},
	}
	for _, bc := range builders {
		for _, workers := range []int{1, 2, 3, 4, 7, 8} {
			t.Run(fmt.Sprintf("%s/P=%d", bc.name, workers), func(t *testing.T) {
				// Engine run: coarse with the element-parallel ordered merge.
				l, bot, top := bc.build(t, bc.seed)
				e := NewCoarse(workers)
				e.Forward(l, bot, top)
				seedTopDiff(top, bc.seed)
				for _, p := range l.Params() {
					p.ZeroDiff()
				}
				e.Backward(l, bot, top)
				e.Close()

				// Reference run: serial rank-ordered merge, reconstructed.
				lr, botr, topr := bc.build(t, bc.seed)
				seq := NewSequential()
				seq.Forward(lr, botr, topr)
				seedTopDiff(topr, bc.seed)
				for _, p := range lr.Params() {
					p.ZeroDiff()
				}
				referenceOrderedBackward(lr, botr, topr, workers)

				for pi := range l.Params() {
					got, want := l.Params()[pi].Diff(), lr.Params()[pi].Diff()
					for i := range want {
						if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
							t.Fatalf("param %d element %d: engine %x != ordered reference %x",
								pi, i, math.Float32bits(got[i]), math.Float32bits(want[i]))
						}
					}
				}
				if d := maxAbsDiff(bot[0].Diff(), botr[0].Diff()); d != 0 {
					t.Fatalf("bottom diff differs by %g (disjoint writes must be exact)", d)
				}

				// Sequential-engine comparison: bitwise at P=1, tolerance
				// beyond (float addition is not associative).
				ls, bots, tops := bc.build(t, bc.seed)
				seq.Forward(ls, bots, tops)
				seedTopDiff(tops, bc.seed)
				for _, p := range ls.Params() {
					p.ZeroDiff()
				}
				seq.Backward(ls, bots, tops)
				for pi := range l.Params() {
					got, want := l.Params()[pi].Diff(), ls.Params()[pi].Diff()
					if workers == 1 {
						for i := range want {
							if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
								t.Fatalf("P=1 param %d element %d not bit-identical to Sequential", pi, i)
							}
						}
					} else if d := maxAbsDiff(got, want); d > 1e-4 {
						t.Fatalf("param %d deviates from Sequential by %g", pi, d)
					}
				}
			})
		}
	}
}
