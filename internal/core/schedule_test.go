package core

import (
	"testing"
)

func TestScheduleString(t *testing.T) {
	if StaticSchedule.String() != "static" || DynamicSchedule.String() != "dynamic" {
		t.Fatal("schedule strings wrong")
	}
}

func TestDynamicForwardBitIdenticalToStatic(t *testing.T) {
	// Forward writes are indexed by iteration, so the schedule cannot
	// change the result — only the assignment of iterations to workers.
	lRef, botRef, topRef := buildConv(t, 31)
	es := NewCoarseWithSchedule(4, StaticSchedule)
	es.Forward(lRef, botRef, topRef)
	es.Close()

	l, bot, top := buildConv(t, 31)
	ed := NewCoarseWithSchedule(4, DynamicSchedule)
	if ed.Schedule() != DynamicSchedule {
		t.Fatal("schedule lost")
	}
	ed.Forward(l, bot, top)
	ed.Close()
	for i := range topRef[0].Data() {
		if top[0].Data()[i] != topRef[0].Data()[i] {
			t.Fatalf("dynamic forward differs at %d", i)
		}
	}
}

func TestDynamicBackwardCorrectWithinTolerance(t *testing.T) {
	// Dynamic scheduling reassociates the per-rank gradient sums, so the
	// result matches sequential only within float tolerance (this is the
	// determinism the paper gives up without static+ordered execution).
	lRef, botRef, topRef := buildConv(t, 37)
	seq := NewSequential()
	seq.Forward(lRef, botRef, topRef)
	seedTopDiff(topRef, 37)
	for _, p := range lRef.Params() {
		p.ZeroDiff()
	}
	seq.Backward(lRef, botRef, topRef)

	l, bot, top := buildConv(t, 37)
	ed := NewCoarseWithSchedule(4, DynamicSchedule)
	defer ed.Close()
	ed.Forward(l, bot, top)
	seedTopDiff(top, 37)
	for _, p := range l.Params() {
		p.ZeroDiff()
	}
	ed.Backward(l, bot, top)
	// Bottom diffs are exact (disjoint writes); param grads within tol.
	if d := maxAbsDiff(bot[0].Diff(), botRef[0].Diff()); d != 0 {
		t.Fatalf("dynamic bottom diff differs by %g", d)
	}
	for pi := range l.Params() {
		if d := maxAbsDiff(l.Params()[pi].Diff(), lRef.Params()[pi].Diff()); d > 1e-3 {
			t.Fatalf("dynamic param %d grad deviates by %g", pi, d)
		}
	}
}

func TestDynamicBackwardNoParamsPath(t *testing.T) {
	// The no-privatization path must also work under dynamic scheduling.
	l, bot, top := buildConv(t, 41)
	l.SetPropagateDown([]bool{true})
	ed := NewCoarseWithSchedule(3, DynamicSchedule)
	defer ed.Close()
	ed.Forward(l, bot, top)
	seedTopDiff(top, 41)
	for _, p := range l.Params() {
		p.ZeroDiff()
	}
	ed.Backward(l, bot, top)
	if l.Params()[0].AsumDiff() == 0 {
		t.Fatal("no gradient computed under dynamic schedule")
	}
}
