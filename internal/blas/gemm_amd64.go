//go:build amd64

package blas

// AVX2+FMA micro-kernel selection. The 4x16 assembly kernel
// (gemm_kernel_amd64.s) keeps eight 8-lane YMM accumulators and issues
// two fused multiply-adds per broadcast A element — 64 flops per packed
// step against the scalar kernel's 32 flops per 24 scalar ops. Selection
// happens exactly once, at init, so every Gemm in the process (and every
// band of every Gemm) uses the same kernel; see the determinism contract
// in gemm_blocked.go.
func init() {
	if hasAVX2FMA() {
		gemmNR = 16
		gemmMicroKernel = microKernelAVX4x16
	}
}

// cpuidAsm executes CPUID with the given EAX/ECX inputs.
func cpuidAsm(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

// xgetbvAsm reads extended control register 0 (XCR0).
func xgetbvAsm() (eax, edx uint32)

// hasAVX2FMA reports whether both the CPU and the OS support the AVX2+FMA
// kernel: FMA and OSXSAVE from CPUID.1:ECX, AVX2 from CPUID.7:EBX, and
// XMM+YMM state enabled in XCR0 (without the OS saving YMM state across
// context switches, executing VEX instructions faults).
func hasAVX2FMA() bool {
	maxID, _, _, _ := cpuidAsm(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, ecx1, _ := cpuidAsm(1, 0)
	const fma = 1 << 12
	const osxsave = 1 << 27
	if ecx1&fma == 0 || ecx1&osxsave == 0 {
		return false
	}
	if xcr0, _ := xgetbvAsm(); xcr0&0x6 != 0x6 { // XMM and YMM state
		return false
	}
	_, ebx7, _, _ := cpuidAsm(7, 0)
	const avx2 = 1 << 5
	return ebx7&avx2 != 0
}

// sgemmKernel4x16 (assembly) accumulates a 4x16 micro-tile:
// acc[i*16+j] = sum over l of ap[l*4+i] * bp[l*16+j], for kc > 0.
//
//go:noescape
func sgemmKernel4x16(ap, bp *float32, kc int, acc *[gemmMR * gemmNRMax]float32)

func microKernelAVX4x16(ap, bp []float32, kc int, acc *[gemmMR * gemmNRMax]float32) {
	sgemmKernel4x16(&ap[0], &bp[0], kc, acc)
}
