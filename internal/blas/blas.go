// Package blas is a from-scratch, pure-Go implementation of the basic
// linear algebra subroutines that DNN layer transformations are built on
// (§2.1.2 of the paper: layers are f_i(x, W_i, b_i) = W_i*x + b_i applied
// piecewise over blob segments). It replaces the OpenBLAS dependency of the
// paper's Caffe configuration.
//
// # Kernel hierarchy
//
// Gemm is organised as three levels, the same structure OpenBLAS uses
// (see PERFORMANCE.md for block sizes and measurements):
//
//   - Gemm / GemmRows: dispatch. Large shapes (useBlockedGemm) go to the
//     cache-blocked kernel; tiny shapes run gemmRef, the original i-k-j
//     loop, which also serves as the reference for differential tests.
//   - macro-tiles: the blocked kernel walks C in gemmMC x gemmNC tiles,
//     packing gemmKC-deep panels of op(A) and op(B) into contiguous
//     scratch (GemmScratch) so the inner loops read two linear streams.
//   - micro-kernel: gemmKernel4x4 computes a 4x4 tile of C in registers
//     with a rank-gemmKC update from one A panel and one B panel.
//
// Two parallel granularities are provided, mirroring the paper's taxonomy
// of parallelism sources (§3.1):
//
//   - serial kernels (Gemm, Gemv, Axpy, ...) used inside coarse-grain
//     (batch-level) parallel regions, where the *caller* owns the threads;
//   - fine-grain parallel kernels (GemmParallel, ...) that split the BLAS
//     operation itself across a worker pool — GemmParallel hands each
//     worker a contiguous, micro-tile-aligned row band of C and runs the
//     blocked kernel inside the band. These implement the "BLAS level
//     parallelism" (§3.1.1) used by the fine-grain engines.
//
// Every partition of one logical Gemm — serial, any GemmRows banding, any
// GemmParallel worker count — produces bit-identical C; see the
// determinism contract in gemm_blocked.go. The coarse engine's
// "bit-identical forward for any worker count" guarantee rests on this.
//
// All matrices are row-major, mirroring the C-contiguous blob layout.
package blas

import (
	"fmt"

	"coarsegrain/internal/par"
)

// Transpose selects op(X) for Gemm/Gemv.
type Transpose bool

const (
	// NoTrans uses the matrix as stored.
	NoTrans Transpose = false
	// Trans uses the transpose of the stored matrix.
	Trans Transpose = true
)

// Gemm computes C = alpha*op(A)*op(B) + beta*C for row-major matrices.
// op(A) is M x K, op(B) is K x N, C is M x N. lda/ldb/ldc are the leading
// (row) strides of the *stored* matrices.
//
// Large shapes run the cache-blocked packed kernel (gemm_blocked.go) with
// packing buffers drawn from a package pool; callers issuing many Gemms
// in a loop should use GemmWithScratch to reuse one set of buffers.
func Gemm(transA, transB Transpose, m, n, k int, alpha float32, a []float32, lda int, b []float32, ldb int, beta float32, c []float32, ldc int) {
	checkGemm(transA, transB, m, n, k, a, lda, b, ldb, c, ldc)
	gemmBand(nil, transA, transB, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc, 0, m)
}

// GemmWithScratch is Gemm with caller-owned packing buffers. The scratch
// is only touched for shapes that take the blocked path; its zero value
// is ready to use and grows on demand.
func GemmWithScratch(s *GemmScratch, transA, transB Transpose, m, n, k int, alpha float32, a []float32, lda int, b []float32, ldb int, beta float32, c []float32, ldc int) {
	checkGemm(transA, transB, m, n, k, a, lda, b, ldb, c, ldc)
	gemmBand(s, transA, transB, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc, 0, m)
}

// GemmRows computes rows [rowLo, rowHi) of the Gemm result. It is the
// work-splittable core used by both Gemm (full range) and GemmParallel
// (one contiguous row band per worker). Bands of distinct workers touch
// disjoint rows of C, so the parallel composition is race-free; the band
// split does not change the computed values (see gemm_blocked.go).
func GemmRows(transA, transB Transpose, m, n, k int, alpha float32, a []float32, lda int, b []float32, ldb int, beta float32, c []float32, ldc int, rowLo, rowHi int) {
	if rowLo < 0 || rowHi > m || rowLo > rowHi {
		panic(fmt.Sprintf("blas: bad row band [%d,%d) for m=%d", rowLo, rowHi, m))
	}
	gemmBand(nil, transA, transB, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc, rowLo, rowHi)
}

// GemmReference runs the pre-blocking i-k-j kernel unconditionally,
// bypassing the blocked-path dispatch. It exists as the baseline for
// benchmarks (see internal/bench and PERFORMANCE.md) and as an external
// check against the blocked kernel; use Gemm everywhere else.
func GemmReference(transA, transB Transpose, m, n, k int, alpha float32, a []float32, lda int, b []float32, ldb int, beta float32, c []float32, ldc int) {
	checkGemm(transA, transB, m, n, k, a, lda, b, ldb, c, ldc)
	gemmRef(transA, transB, n, k, alpha, a, lda, b, ldb, beta, c, ldc, 0, m)
}

// gemmBand dispatches rows [rowLo, rowHi) to the blocked or reference
// kernel. The choice ignores both the band and M (useBlockedGemm), so
// every band of one logical Gemm takes the same path — a prerequisite for
// bit-identical results at any worker count. A nil scratch borrows one
// from the package pool only when the blocked path is taken.
func gemmBand(s *GemmScratch, transA, transB Transpose, m, n, k int, alpha float32, a []float32, lda int, b []float32, ldb int, beta float32, c []float32, ldc int, rowLo, rowHi int) {
	if !useBlockedGemm(n, k) {
		gemmRef(transA, transB, n, k, alpha, a, lda, b, ldb, beta, c, ldc, rowLo, rowHi)
		return
	}
	if s == nil {
		s = GetScratch()
		defer PutScratch(s)
	}
	gemmBlocked(s, transA, transB, n, k, alpha, a, lda, b, ldb, beta, c, ldc, rowLo, rowHi)
}

// gemmRef is the original i-k-j kernel with a row accumulator: B accesses
// stay sequential and the axpyTo inner loop unrolls. It remains the
// fallback for shapes too small to amortize packing, and the reference
// implementation the blocked kernel is differentially tested against.
func gemmRef(transA, transB Transpose, n, k int, alpha float32, a []float32, lda int, b []float32, ldb int, beta float32, c []float32, ldc int, rowLo, rowHi int) {
	for i := rowLo; i < rowHi; i++ {
		ci := c[i*ldc : i*ldc+n]
		if beta == 0 {
			for j := range ci {
				ci[j] = 0
			}
		} else if beta != 1 {
			for j := range ci {
				ci[j] *= beta
			}
		}
		if alpha == 0 {
			continue
		}
		for l := 0; l < k; l++ {
			var av float32
			if transA == NoTrans {
				av = a[i*lda+l]
			} else {
				av = a[l*lda+i]
			}
			if av == 0 {
				continue
			}
			av *= alpha
			if transB == NoTrans {
				bl := b[l*ldb : l*ldb+n]
				axpyTo(ci, bl, av)
			} else {
				// op(B)[l, j] = B[j, l]
				for j := 0; j < n; j++ {
					ci[j] += av * b[j*ldb+l]
				}
			}
		}
	}
}

// axpyTo computes dst += alpha*src elementwise; split out so the compiler
// can bounds-check-eliminate and unroll the innermost gemm loop.
func axpyTo(dst, src []float32, alpha float32) {
	n := len(dst)
	if len(src) < n {
		n = len(src)
	}
	var i int
	for ; i+3 < n; i += 4 {
		dst[i] += alpha * src[i]
		dst[i+1] += alpha * src[i+1]
		dst[i+2] += alpha * src[i+2]
		dst[i+3] += alpha * src[i+3]
	}
	for ; i < n; i++ {
		dst[i] += alpha * src[i]
	}
}

// checkGemm validates dimensions, leading strides, and backing-slice
// lengths; each panic names the operand that failed and the constraint it
// violated, so a crash in a deep layer stack points at the bad argument
// instead of a raw slice length.
func checkGemm(transA, transB Transpose, m, n, k int, a []float32, lda int, b []float32, ldb int, c []float32, ldc int) {
	if m < 0 || n < 0 || k < 0 {
		panic(fmt.Sprintf("blas: negative gemm dims m=%d n=%d k=%d", m, n, k))
	}
	// Minimal extents of the stored (pre-op) matrices.
	arows, acols := m, k
	if transA == Trans {
		arows, acols = k, m
	}
	brows, bcols := k, n
	if transB == Trans {
		brows, bcols = n, k
	}
	if lda < acols {
		panic(fmt.Sprintf("blas: gemm A: lda=%d < stored cols %d (stored A is %dx%d, transA=%v)", lda, acols, arows, acols, transA == Trans))
	}
	if ldb < bcols {
		panic(fmt.Sprintf("blas: gemm B: ldb=%d < stored cols %d (stored B is %dx%d, transB=%v)", ldb, bcols, brows, bcols, transB == Trans))
	}
	if ldc < n {
		panic(fmt.Sprintf("blas: gemm C: ldc=%d < n=%d", ldc, n))
	}
	if need := (arows-1)*lda + acols; arows > 0 && len(a) < need {
		panic(fmt.Sprintf("blas: gemm A too short: len=%d, need >= %d ((rows-1)*lda+cols = %d*%d+%d)", len(a), need, arows-1, lda, acols))
	}
	if need := (brows-1)*ldb + bcols; brows > 0 && len(b) < need {
		panic(fmt.Sprintf("blas: gemm B too short: len=%d, need >= %d ((rows-1)*ldb+cols = %d*%d+%d)", len(b), need, brows-1, ldb, bcols))
	}
	if need := (m-1)*ldc + n; m > 0 && len(c) < need {
		panic(fmt.Sprintf("blas: gemm C too short: len=%d, need >= %d ((m-1)*ldc+n = %d*%d+%d)", len(c), need, m-1, ldc, n))
	}
}

// GemmParallel is the fine-grain (BLAS-level) parallel Gemm: the M rows of
// C are statically partitioned across the pool's workers into contiguous
// bands aligned to the blocked kernel's micro-tile height, so each worker
// runs whole macro-tiles of the blocked kernel (with its own packing
// scratch) rather than raw rows. This is the parallelism a GPU BLAS
// exploits, transplanted to goroutines; it is the building block of the
// plain-GPU analogue engine. Results are bit-identical to serial Gemm for
// every worker count.
func GemmParallel(p *par.Pool, transA, transB Transpose, m, n, k int, alpha float32, a []float32, lda int, b []float32, ldb int, beta float32, c []float32, ldc int) {
	checkGemm(transA, transB, m, n, k, a, lda, b, ldb, c, ldc)
	if p == nil || p.Workers() == 1 || m == 1 {
		gemmBand(nil, transA, transB, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc, 0, m)
		return
	}
	p.ForTiles(m, gemmMR, func(lo, hi, _ int) {
		gemmBand(nil, transA, transB, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc, lo, hi)
	})
}

// Gemv computes y = alpha*op(A)*x + beta*y where A is an m x n row-major
// matrix (before op).
func Gemv(trans Transpose, m, n int, alpha float32, a []float32, lda int, x []float32, beta float32, y []float32) {
	if lda < n {
		panic(fmt.Sprintf("blas: gemv lda=%d < n=%d", lda, n))
	}
	if m > 0 && len(a) < (m-1)*lda+n {
		panic("blas: gemv A too short")
	}
	if trans == NoTrans {
		if len(x) < n || len(y) < m {
			panic("blas: gemv vector too short")
		}
		for i := 0; i < m; i++ {
			var acc float32
			row := a[i*lda : i*lda+n]
			for j, av := range row {
				acc += av * x[j]
			}
			if beta == 0 {
				y[i] = alpha * acc
			} else {
				y[i] = alpha*acc + beta*y[i]
			}
		}
		return
	}
	// y (len n) = alpha * A^T x (len m) + beta*y
	if len(x) < m || len(y) < n {
		panic("blas: gemv vector too short")
	}
	if beta == 0 {
		for j := 0; j < n; j++ {
			y[j] = 0
		}
	} else if beta != 1 {
		for j := 0; j < n; j++ {
			y[j] *= beta
		}
	}
	for i := 0; i < m; i++ {
		av := alpha * x[i]
		if av == 0 {
			continue
		}
		row := a[i*lda : i*lda+n]
		axpyTo(y[:n], row, av)
	}
}

// Axpy computes y += alpha*x over min(len(x), len(y)) elements.
func Axpy(alpha float32, x, y []float32) { axpyTo(y, x, alpha) }

// Axpby computes y = alpha*x + beta*y.
func Axpby(alpha float32, x []float32, beta float32, y []float32) {
	n := len(y)
	if len(x) < n {
		n = len(x)
	}
	for i := 0; i < n; i++ {
		y[i] = alpha*x[i] + beta*y[i]
	}
}

// Scal computes x *= alpha.
func Scal(alpha float32, x []float32) {
	for i := range x {
		x[i] *= alpha
	}
}

// Dot returns the inner product of x and y over min(len(x), len(y))
// elements, accumulated in float64 for stability.
func Dot(x, y []float32) float32 {
	n := len(x)
	if len(y) < n {
		n = len(y)
	}
	var s float64
	for i := 0; i < n; i++ {
		s += float64(x[i]) * float64(y[i])
	}
	return float32(s)
}

// Asum returns the sum of absolute values of x.
func Asum(x []float32) float32 {
	var s float64
	for _, v := range x {
		if v < 0 {
			s -= float64(v)
		} else {
			s += float64(v)
		}
	}
	return float32(s)
}

// Copy copies src into dst (counts must match).
func Copy(dst, src []float32) {
	if len(dst) != len(src) {
		panic("blas: copy length mismatch")
	}
	copy(dst, src)
}

// SetAll stores v into every element of x.
func SetAll(x []float32, v float32) {
	for i := range x {
		x[i] = v
	}
}

// AddScalar adds v to every element of x.
func AddScalar(x []float32, v float32) {
	for i := range x {
		x[i] += v
	}
}

// Mul computes z[i] = x[i]*y[i].
func Mul(z, x, y []float32) {
	for i := range z {
		z[i] = x[i] * y[i]
	}
}

// Div computes z[i] = x[i]/y[i].
func Div(z, x, y []float32) {
	for i := range z {
		z[i] = x[i] / y[i]
	}
}
