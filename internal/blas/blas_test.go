package blas

import (
	"math"
	"testing"
	"testing/quick"

	"coarsegrain/internal/par"
	"coarsegrain/internal/rng"
)

// naiveGemm is the reference implementation used to validate the optimized
// kernel: straightforward triple loop with explicit op() indexing.
func naiveGemm(transA, transB Transpose, m, n, k int, alpha float32, a []float32, lda int, b []float32, ldb int, beta float32, c []float32, ldc int) {
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var acc float64
			for l := 0; l < k; l++ {
				var av, bv float32
				if transA == NoTrans {
					av = a[i*lda+l]
				} else {
					av = a[l*lda+i]
				}
				if transB == NoTrans {
					bv = b[l*ldb+j]
				} else {
					bv = b[j*ldb+l]
				}
				acc += float64(av) * float64(bv)
			}
			c[i*ldc+j] = float32(float64(alpha)*acc + float64(beta)*float64(c[i*ldc+j]))
		}
	}
}

func randomSlice(r *rng.RNG, n int) []float32 {
	s := make([]float32, n)
	for i := range s {
		s[i] = r.Range(-1, 1)
	}
	return s
}

func maxAbsDiff(a, b []float32) float64 {
	var m float64
	for i := range a {
		d := math.Abs(float64(a[i]) - float64(b[i]))
		if d > m {
			m = d
		}
	}
	return m
}

func TestGemmAgainstNaive(t *testing.T) {
	r := rng.New(1, 1)
	cases := []struct {
		ta, tb  Transpose
		m, n, k int
	}{
		{NoTrans, NoTrans, 4, 5, 6},
		{NoTrans, Trans, 4, 5, 6},
		{Trans, NoTrans, 4, 5, 6},
		{Trans, Trans, 4, 5, 6},
		{NoTrans, NoTrans, 1, 1, 1},
		{NoTrans, NoTrans, 17, 23, 9},
		{Trans, Trans, 13, 7, 19},
		{NoTrans, Trans, 32, 32, 32},
	}
	for _, tc := range cases {
		for _, alpha := range []float32{0, 1, 0.5} {
			for _, beta := range []float32{0, 1, -0.25} {
				asz, bsz := tc.m*tc.k, tc.k*tc.n
				lda, ldb, ldc := tc.k, tc.n, tc.n
				if tc.ta == Trans {
					lda = tc.m
				}
				if tc.tb == Trans {
					ldb = tc.k
				}
				a := randomSlice(r, asz)
				b := randomSlice(r, bsz)
				c0 := randomSlice(r, tc.m*tc.n)
				got := append([]float32(nil), c0...)
				want := append([]float32(nil), c0...)
				Gemm(tc.ta, tc.tb, tc.m, tc.n, tc.k, alpha, a, lda, b, ldb, beta, got, ldc)
				naiveGemm(tc.ta, tc.tb, tc.m, tc.n, tc.k, alpha, a, lda, b, ldb, beta, want, ldc)
				if d := maxAbsDiff(got, want); d > 1e-4 {
					t.Fatalf("gemm(%v,%v,%d,%d,%d,a=%v,b=%v) max diff %g", tc.ta, tc.tb, tc.m, tc.n, tc.k, alpha, beta, d)
				}
			}
		}
	}
}

func TestGemmParallelMatchesSerial(t *testing.T) {
	r := rng.New(2, 2)
	m, n, k := 37, 29, 31
	a := randomSlice(r, m*k)
	b := randomSlice(r, k*n)
	want := make([]float32, m*n)
	Gemm(NoTrans, NoTrans, m, n, k, 1, a, k, b, n, 0, want, n)
	for _, workers := range []int{1, 2, 4, 8} {
		p := par.NewPool(workers)
		got := make([]float32, m*n)
		GemmParallel(p, NoTrans, NoTrans, m, n, k, 1, a, k, b, n, 0, got, n)
		p.Close()
		// Row-parallel gemm is bit-identical: each row is computed by
		// exactly the same sequence of operations regardless of worker.
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: parallel gemm differs at %d: %v vs %v", workers, i, got[i], want[i])
			}
		}
	}
}

func TestGemmParallelNilPool(t *testing.T) {
	a := []float32{1, 2, 3, 4}
	b := []float32{5, 6, 7, 8}
	c := make([]float32, 4)
	GemmParallel(nil, NoTrans, NoTrans, 2, 2, 2, 1, a, 2, b, 2, 0, c, 2)
	if c[0] != 19 || c[3] != 50 {
		t.Fatalf("gemm wrong: %v", c)
	}
}

func TestGemmBadArgsPanic(t *testing.T) {
	check := func(f func()) {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		f()
	}
	a := make([]float32, 4)
	check(func() { Gemm(NoTrans, NoTrans, -1, 2, 2, 1, a, 2, a, 2, 0, a, 2) })
	check(func() { Gemm(NoTrans, NoTrans, 2, 2, 2, 1, a, 1, a, 2, 0, a, 2) })
	check(func() { Gemm(NoTrans, NoTrans, 4, 4, 4, 1, a, 4, a, 4, 0, a, 4) })
	check(func() { GemmRows(NoTrans, NoTrans, 2, 2, 2, 1, a, 2, a, 2, 0, a, 2, 1, 3) })
}

func TestGemvNoTrans(t *testing.T) {
	// A = [[1,2,3],[4,5,6]], x = [1,1,1]
	a := []float32{1, 2, 3, 4, 5, 6}
	x := []float32{1, 1, 1}
	y := []float32{10, 10}
	Gemv(NoTrans, 2, 3, 1, a, 3, x, 0, y)
	if y[0] != 6 || y[1] != 15 {
		t.Fatalf("gemv: %v", y)
	}
	Gemv(NoTrans, 2, 3, 2, a, 3, x, 1, y)
	if y[0] != 18 || y[1] != 45 {
		t.Fatalf("gemv with beta: %v", y)
	}
}

func TestGemvTrans(t *testing.T) {
	a := []float32{1, 2, 3, 4, 5, 6} // 2x3
	x := []float32{1, 2}
	y := make([]float32, 3)
	Gemv(Trans, 2, 3, 1, a, 3, x, 0, y)
	// A^T x = [1+8, 2+10, 3+12]
	if y[0] != 9 || y[1] != 12 || y[2] != 15 {
		t.Fatalf("gemv trans: %v", y)
	}
}

func TestGemvAgainstGemm(t *testing.T) {
	r := rng.New(3, 3)
	m, n := 13, 17
	a := randomSlice(r, m*n)
	x := randomSlice(r, n)
	y1 := make([]float32, m)
	y2 := make([]float32, m)
	Gemv(NoTrans, m, n, 1, a, n, x, 0, y1)
	Gemm(NoTrans, NoTrans, m, 1, n, 1, a, n, x, 1, 0, y2, 1)
	if d := maxAbsDiff(y1, y2); d > 1e-5 {
		t.Fatalf("gemv vs gemm diff %g", d)
	}
}

func TestAxpyFamily(t *testing.T) {
	x := []float32{1, 2, 3}
	y := []float32{10, 20, 30}
	Axpy(2, x, y)
	if y[0] != 12 || y[2] != 36 {
		t.Fatalf("axpy: %v", y)
	}
	Axpby(1, x, 0.5, y)
	if y[0] != 7 || y[2] != 21 {
		t.Fatalf("axpby: %v", y)
	}
	Scal(2, y)
	if y[0] != 14 {
		t.Fatalf("scal: %v", y)
	}
}

func TestDotAsum(t *testing.T) {
	x := []float32{1, -2, 3}
	y := []float32{4, 5, -6}
	if d := Dot(x, y); d != 4-10-18 {
		t.Fatalf("dot = %v", d)
	}
	if a := Asum(x); a != 6 {
		t.Fatalf("asum = %v", a)
	}
}

func TestElementwiseHelpers(t *testing.T) {
	z := make([]float32, 3)
	Mul(z, []float32{1, 2, 3}, []float32{4, 5, 6})
	if z[2] != 18 {
		t.Fatalf("mul: %v", z)
	}
	Div(z, []float32{8, 10, 18}, []float32{4, 5, 6})
	if z[0] != 2 || z[2] != 3 {
		t.Fatalf("div: %v", z)
	}
	SetAll(z, 7)
	AddScalar(z, 1)
	if z[1] != 8 {
		t.Fatalf("setall/addscalar: %v", z)
	}
	c := make([]float32, 3)
	Copy(c, z)
	if c[0] != 8 {
		t.Fatalf("copy: %v", c)
	}
}

func TestCopyMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Copy(make([]float32, 2), make([]float32, 3))
}

func TestConvOutSize(t *testing.T) {
	// 28x28, kernel 5, stride 1, no pad -> 24 (LeNet conv1).
	if ConvOutSize(28, 5, 0, 1) != 24 {
		t.Fatal("conv out size wrong for LeNet conv1")
	}
	// 32x32, kernel 5, pad 2, stride 1 -> 32 (CIFAR conv1).
	if ConvOutSize(32, 5, 2, 1) != 32 {
		t.Fatal("conv out size wrong for CIFAR conv1")
	}
}

func TestPoolOutSize(t *testing.T) {
	// 24x24, kernel 2, stride 2 -> 12 (LeNet pool1).
	if PoolOutSize(24, 2, 0, 2) != 12 {
		t.Fatal("pool out size wrong for LeNet pool1")
	}
	// 32x32, kernel 3, stride 2 -> ceil((32-3)/2)+1 = 16 (CIFAR pool1).
	if PoolOutSize(32, 3, 0, 2) != 16 {
		t.Fatalf("pool out size = %d, want 16", PoolOutSize(32, 3, 0, 2))
	}
	// Padding: in=4, k=3, pad=1, stride=2 -> windows at -1, 1, 3, all
	// starting inside the padded input (last start 3 < in+pad = 5) -> 3.
	if PoolOutSize(4, 3, 1, 2) != 3 {
		t.Fatalf("padded pool out = %d", PoolOutSize(4, 3, 1, 2))
	}
	// Clipping case: in=3, k=2, pad=1, stride=2 -> raw 3 windows at
	// -1, 1, 3 but start 3 >= in+pad = 4 is false... use in=2:
	// in=2, k=2, pad=1, stride=2 -> raw out=2 at -1,1; 1 < 3 -> 2.
	if PoolOutSize(2, 2, 1, 2) != 2 {
		t.Fatalf("padded pool out (2,2,1,2) = %d", PoolOutSize(2, 2, 1, 2))
	}
}

func TestIm2colIdentityKernel(t *testing.T) {
	// 1x1 kernel, stride 1, no padding: col equals the image.
	im := []float32{1, 2, 3, 4, 5, 6}
	col := make([]float32, 6)
	Im2col(im, 1, 2, 3, 1, 1, 0, 0, 1, 1, col)
	for i := range im {
		if col[i] != im[i] {
			t.Fatalf("identity im2col: %v", col)
		}
	}
}

func TestIm2colKnownValues(t *testing.T) {
	// 1 channel 3x3 image, 2x2 kernel, stride 1: out 2x2, col is 4x4.
	im := []float32{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}
	col := make([]float32, 4*4)
	Im2col(im, 1, 3, 3, 2, 2, 0, 0, 1, 1, col)
	want := []float32{
		1, 2, 4, 5, // k(0,0) over the 4 output positions
		2, 3, 5, 6, // k(0,1)
		4, 5, 7, 8, // k(1,0)
		5, 6, 8, 9, // k(1,1)
	}
	for i := range want {
		if col[i] != want[i] {
			t.Fatalf("im2col row-major mismatch at %d: got %v want %v", i, col, want)
		}
	}
}

func TestIm2colPadding(t *testing.T) {
	// 1x1 image, 3x3 kernel, pad 1: single output, 9 col entries, center=v.
	im := []float32{42}
	col := make([]float32, 9)
	Im2col(im, 1, 1, 1, 3, 3, 1, 1, 1, 1, col)
	for i, v := range col {
		want := float32(0)
		if i == 4 {
			want = 42
		}
		if v != want {
			t.Fatalf("pad im2col[%d] = %v", i, v)
		}
	}
}

func TestCol2imAdjoint(t *testing.T) {
	// <Im2col(x), y> == <x, Col2im(y)> — the defining adjoint identity.
	r := rng.New(4, 4)
	ch, h, w := 2, 5, 4
	kh, kw, ph, pw, sh, sw := 3, 2, 1, 0, 2, 1
	outH := ConvOutSize(h, kh, ph, sh)
	outW := ConvOutSize(w, kw, pw, sw)
	colLen := ch * kh * kw * outH * outW
	x := randomSlice(r, ch*h*w)
	y := randomSlice(r, colLen)

	colX := make([]float32, colLen)
	Im2col(x, ch, h, w, kh, kw, ph, pw, sh, sw, colX)
	imY := make([]float32, ch*h*w)
	Col2im(y, ch, h, w, kh, kw, ph, pw, sh, sw, imY)

	lhs := float64(Dot(colX, y))
	rhs := float64(Dot(x, imY))
	if math.Abs(lhs-rhs) > 1e-3 {
		t.Fatalf("adjoint identity violated: %v vs %v", lhs, rhs)
	}
}

func TestCol2imAccumulates(t *testing.T) {
	im := []float32{5}
	col := []float32{1}
	Col2im(col, 1, 1, 1, 1, 1, 0, 0, 1, 1, im)
	if im[0] != 6 {
		t.Fatalf("col2im should accumulate, got %v", im[0])
	}
}

// Property: gemm distributes over addition in A: (A1+A2)B = A1*B + A2*B.
func TestQuickGemmLinearity(t *testing.T) {
	r := rng.New(5, 5)
	f := func(mRaw, nRaw, kRaw uint8) bool {
		m, n, k := int(mRaw%8)+1, int(nRaw%8)+1, int(kRaw%8)+1
		a1 := randomSlice(r, m*k)
		a2 := randomSlice(r, m*k)
		b := randomSlice(r, k*n)
		sum := make([]float32, m*k)
		for i := range sum {
			sum[i] = a1[i] + a2[i]
		}
		c1 := make([]float32, m*n)
		c2 := make([]float32, m*n)
		cs := make([]float32, m*n)
		Gemm(NoTrans, NoTrans, m, n, k, 1, a1, k, b, n, 0, c1, n)
		Gemm(NoTrans, NoTrans, m, n, k, 1, a2, k, b, n, 1, c1, n) // c1 += a2*b
		Gemm(NoTrans, NoTrans, m, n, k, 1, sum, k, b, n, 0, cs, n)
		_ = c2
		return maxAbsDiff(c1, cs) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: transposing both arguments transposes the product:
// op(B^T A^T) == (A B)^T.
func TestQuickGemmTransposeIdentity(t *testing.T) {
	r := rng.New(6, 6)
	f := func(mRaw, nRaw, kRaw uint8) bool {
		m, n, k := int(mRaw%6)+1, int(nRaw%6)+1, int(kRaw%6)+1
		a := randomSlice(r, m*k) // m x k
		b := randomSlice(r, k*n) // k x n
		ab := make([]float32, m*n)
		Gemm(NoTrans, NoTrans, m, n, k, 1, a, k, b, n, 0, ab, n)
		// Compute (AB)^T directly as B^T A^T using Trans flags on the
		// stored row-major A and B: C2 (n x m) = op(B) op(A) with both Trans.
		c2 := make([]float32, n*m)
		Gemm(Trans, Trans, n, m, k, 1, b, n, a, k, 0, c2, m)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				if math.Abs(float64(ab[i*n+j])-float64(c2[j*m+i])) > 1e-4 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: im2col of a zero image is zero, any geometry.
func TestQuickIm2colZero(t *testing.T) {
	f := func(hRaw, wRaw, kRaw uint8) bool {
		h, w := int(hRaw%6)+3, int(wRaw%6)+3
		k := int(kRaw%3) + 1
		outH := ConvOutSize(h, k, 0, 1)
		outW := ConvOutSize(w, k, 0, 1)
		col := make([]float32, k*k*outH*outW)
		for i := range col {
			col[i] = 99
		}
		Im2col(make([]float32, h*w), 1, h, w, k, k, 0, 0, 1, 1, col)
		for _, v := range col {
			if v != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
