package blas

// Im2col lowers a (channels, height, width) image into a column matrix so
// that a convolution becomes a single Gemm, the standard lowering used by
// Caffe's convolutional layers (and the basis of the cuDNN-analogue
// "FineTuned" engine in this repository).
//
// The output col has shape
//
//	(channels*kernelH*kernelW) x (outH*outW)
//
// stored row-major, where outH = (height + 2*padH - kernelH)/strideH + 1 and
// similarly for outW. Elements read from the padding region are zero.
func Im2col(im []float32, channels, height, width, kernelH, kernelW, padH, padW, strideH, strideW int, col []float32) {
	outH := ConvOutSize(height, kernelH, padH, strideH)
	outW := ConvOutSize(width, kernelW, padW, strideW)
	idx := 0
	for c := 0; c < channels; c++ {
		chIm := im[c*height*width:]
		for kh := 0; kh < kernelH; kh++ {
			for kw := 0; kw < kernelW; kw++ {
				for oh := 0; oh < outH; oh++ {
					ih := oh*strideH - padH + kh
					if ih < 0 || ih >= height {
						for ow := 0; ow < outW; ow++ {
							col[idx] = 0
							idx++
						}
						continue
					}
					rowBase := ih * width
					for ow := 0; ow < outW; ow++ {
						iw := ow*strideW - padW + kw
						if iw < 0 || iw >= width {
							col[idx] = 0
						} else {
							col[idx] = chIm[rowBase+iw]
						}
						idx++
					}
				}
			}
		}
	}
}

// Col2im is the adjoint of Im2col: it scatters (accumulating) the column
// matrix back into an image. Used by the convolution backward pass to
// build the gradient with respect to the layer input.
//
// The destination image is NOT zeroed first; callers accumulate into a
// zeroed (or privatized) buffer.
func Col2im(col []float32, channels, height, width, kernelH, kernelW, padH, padW, strideH, strideW int, im []float32) {
	outH := ConvOutSize(height, kernelH, padH, strideH)
	outW := ConvOutSize(width, kernelW, padW, strideW)
	idx := 0
	for c := 0; c < channels; c++ {
		chIm := im[c*height*width:]
		for kh := 0; kh < kernelH; kh++ {
			for kw := 0; kw < kernelW; kw++ {
				for oh := 0; oh < outH; oh++ {
					ih := oh*strideH - padH + kh
					if ih < 0 || ih >= height {
						idx += outW
						continue
					}
					rowBase := ih * width
					for ow := 0; ow < outW; ow++ {
						iw := ow*strideW - padW + kw
						if iw >= 0 && iw < width {
							chIm[rowBase+iw] += col[idx]
						}
						idx++
					}
				}
			}
		}
	}
}

// ConvOutSize returns the output spatial extent of a convolution/pooling
// window sweep: (in + 2*pad - kernel)/stride + 1.
func ConvOutSize(in, kernel, pad, stride int) int {
	return (in+2*pad-kernel)/stride + 1
}

// PoolOutSize returns the output extent of a Caffe pooling sweep, which
// uses ceil division and then clips windows that start beyond the padded
// input (Caffe PoolingLayer::Reshape semantics).
func PoolOutSize(in, kernel, pad, stride int) int {
	out := (in+2*pad-kernel+stride-1)/stride + 1
	if pad > 0 {
		// The last pooling window must start strictly inside the padded input.
		if (out-1)*stride >= in+pad {
			out--
		}
	}
	return out
}
