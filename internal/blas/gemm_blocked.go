package blas

import "sync"

// This file implements the cache-blocked, panel-packed Gemm kernel — the
// GotoBLAS/BLIS structure (Goto & van de Geijn, 2008) that OpenBLAS (the
// paper's Caffe BLAS) and every tuned DNN library build on:
//
//	for jc over N in steps of gemmNC:          // B column block
//	  for pc over K in steps of gemmKC:        // depth block (fixed! see below)
//	    pack op(B)[pc:pc+KC, jc:jc+NC] into nr-wide micro-panels (bp)
//	    for ic over the row band in steps of gemmMC:
//	      pack op(A)[ic:ic+MC, pc:pc+KC] into mr-tall micro-panels (ap)
//	      for jr over NC in steps of nr:       // bp micro-panel stays in L1
//	        for ir over MC in steps of gemmMR:
//	          micro-kernel: register-tiled rank-KC update of a C tile
//
// Packing turns the strided (and possibly transposed) operand reads into
// two contiguous streams, so the micro-kernel reads exactly mr+nr floats
// per rank-1 step instead of the reference kernel's ~3 memory ops per 2
// flops, and the same packed B panel is reused by every row micro-panel
// of the block.
//
// Two micro-kernels exist. microKernelScalar4x4 is the portable pure-Go
// one: a 4x4 register tile (16 float32 accumulators + 8 temporaries,
// sized for the 16 XMM registers of amd64). On amd64 with AVX2+FMA, init
// (gemm_amd64.go) swaps in the 4x16 assembly kernel sgemmKernel4x16 and
// widens nr to 16: 8 YMM accumulators updated by two fused
// multiply-adds per broadcast A element, ~8x the scalar flop rate. The
// kernel choice is made once per process, never per call.
//
// Determinism contract (load-bearing — the coarse engine depends on it):
// the value written to C[i,j] must depend only on (i, j, the operands,
// alpha, beta, and the process-fixed blocking parameters), NEVER on which
// row band [rowLo, rowHi) the call computes or how that band is split
// into micro-tiles. This holds because
//
//   - each C element is accumulated in its own register lane, over l in
//     strictly increasing order within each KC block, and the KC blocking
//     of the K loop is a package constant independent of the band;
//   - partial edge tiles run the exact same micro-kernel on zero-padded
//     packed panels (x + a*0 == x for finite a), and the writeback loop
//     is the same code for full and partial tiles;
//   - the blocked-vs-reference dispatch (useBlockedGemm) looks only at
//     (n, k), which every band of the same Gemm shares.
//
// Consequently Gemm, GemmRows on any band partition, and GemmParallel at
// any worker count all produce bit-identical C — the property
// TestGemmParallelMatchesSerial and the coarse engine's forward
// bit-identity tests pin down.
const (
	// gemmMR is the micro-tile height shared by both micro-kernels.
	gemmMR = 4
	// gemmNRMax bounds the micro-tile width across kernels; the
	// writeback accumulator buffer is sized for it.
	gemmNRMax = 16
	// gemmKC sizes the depth block: one packed B micro-panel is at most
	// gemmKC*gemmNRMax*4 = 16KiB and one packed A micro-panel 4KiB, so
	// the working set of the inner two loops stays inside a 32-48KiB
	// L1d. gemmKC is part of the determinism contract above — changing
	// it changes low-order bits of every large Gemm.
	gemmKC = 256
	// gemmMC rows of packed A per block: gemmMC*gemmKC*4 = 64KiB, L2
	// resident alongside the packed B block.
	gemmMC = 64
	// gemmNC columns of packed B per block: gemmNC*gemmKC*4 = 512KiB,
	// sized to sit in a (typical 1-2MiB) L2 next to the A block. All the
	// network shapes this repo emits have N <= 1024, so B is usually
	// packed exactly once per KC block.
	gemmNC = 512
)

// gemmNR is the active micro-tile width and gemmMicroKernel the active
// micro-kernel; both are selected once, at package init (see
// gemm_amd64.go), and never changed afterwards — see the determinism
// contract above. The kernel accumulates a gemmMR x gemmNR product tile
// into acc (row stride gemmNR) without touching C.
var (
	gemmNR          = 4
	gemmMicroKernel = microKernelScalar4x4
)

// GemmScratch holds the packing buffers of the blocked kernel so callers
// sitting in a hot loop (one Gemm per sample inside a coarse-grain batch
// band) can reuse them across calls instead of re-allocating. The zero
// value is ready to use; a GemmScratch must not be used from two
// goroutines at once.
type GemmScratch struct {
	ap []float32 // packed A block: up to gemmMC x gemmKC, mr-tall panels
	bp []float32 // packed B block: up to gemmKC x gemmNC, nr-wide panels
	// acc is the micro-kernel's accumulator tile. It lives here rather
	// than on gemmBlocked's stack because the kernel is invoked through
	// the gemmMicroKernel package variable (the AVX dispatch), which
	// defeats escape analysis and would heap-allocate the tile on every
	// call — one GC object per GEMM on the serving hot path.
	acc [gemmMR * gemmNRMax]float32
}

func (s *GemmScratch) ensure(apLen, bpLen int) {
	if cap(s.ap) < apLen {
		//dnnlint:ignore hotalloc grow-once scratch, amortized across every later GEMM on this shape
		s.ap = make([]float32, apLen)
	}
	s.ap = s.ap[:cap(s.ap)]
	if cap(s.bp) < bpLen {
		//dnnlint:ignore hotalloc grow-once scratch, amortized across every later GEMM on this shape
		s.bp = make([]float32, bpLen)
	}
	s.bp = s.bp[:cap(s.bp)]
}

// scratchPool backs plain Gemm/GemmRows/GemmParallel calls that do not
// thread an explicit scratch; pooled storage makes repeated calls
// allocation-free after warm-up.
var scratchPool = sync.Pool{New: func() any { return new(GemmScratch) }}

// GetScratch hands out a packing-buffer scratch from the package pool.
// Callers that issue many Gemms back to back (per-sample lowered
// convolutions, banded inner products) should hold one for the whole loop
// and return it with PutScratch.
func GetScratch() *GemmScratch { return scratchPool.Get().(*GemmScratch) }

// PutScratch returns a scratch obtained from GetScratch to the pool.
func PutScratch(s *GemmScratch) { scratchPool.Put(s) }

// useBlockedGemm decides between the blocked kernel and gemmRef. The
// decision deliberately ignores M: GemmRows/GemmParallel and the coarse
// engine split M into bands, and every band of one logical Gemm must take
// the same path for the results to be bit-identical across worker counts.
// Small-N/K problems stay on gemmRef, where packing would cost more than
// it saves.
func useBlockedGemm(n, k int) bool {
	return n >= 4 && k >= 8 && n*k >= 4096
}

// gemmScaleRows applies C = beta*C over the row band; used for the
// degenerate k == 0 / alpha == 0 cases where the main loops never touch C.
func gemmScaleRows(n int, beta float32, c []float32, ldc, rowLo, rowHi int) {
	for i := rowLo; i < rowHi; i++ {
		ci := c[i*ldc : i*ldc+n]
		if beta == 0 {
			for j := range ci {
				ci[j] = 0
			}
		} else if beta != 1 {
			for j := range ci {
				ci[j] *= beta
			}
		}
	}
}

// gemmBlocked computes rows [rowLo, rowHi) of C = alpha*op(A)*op(B) +
// beta*C with the blocked/packed kernel. The caller has validated the
// arguments (checkGemm) and the dispatch predicate (useBlockedGemm).
func gemmBlocked(s *GemmScratch, transA, transB Transpose, n, k int, alpha float32, a []float32, lda int, b []float32, ldb int, beta float32, c []float32, ldc int, rowLo, rowHi int) {
	if rowLo >= rowHi {
		return
	}
	if alpha == 0 || k == 0 {
		gemmScaleRows(n, beta, c, ldc, rowLo, rowHi)
		return
	}
	nr := gemmNR
	mcMax := gemmMC
	if band := rowHi - rowLo; band < mcMax {
		mcMax = band
	}
	ncMax := gemmNC
	if n < ncMax {
		ncMax = n
	}
	kcMax := gemmKC
	if k < kcMax {
		kcMax = k
	}
	s.ensure(roundUp(mcMax, gemmMR)*kcMax, roundUp(ncMax, nr)*kcMax)
	acc := &s.acc
	for jc := 0; jc < n; jc += gemmNC {
		nc := min(gemmNC, n-jc)
		for pc := 0; pc < k; pc += gemmKC {
			kc := min(gemmKC, k-pc)
			firstK := pc == 0
			packB(s.bp, transB, b, ldb, pc, kc, jc, nc)
			for ic := rowLo; ic < rowHi; ic += gemmMC {
				mc := min(gemmMC, rowHi-ic)
				packA(s.ap, transA, a, lda, ic, mc, pc, kc)
				for jr := 0; jr < nc; jr += nr {
					nrr := min(nr, nc-jr)
					bpPanel := s.bp[(jr/nr)*kc*nr:]
					for ir := 0; ir < mc; ir += gemmMR {
						mrr := min(gemmMR, mc-ir)
						apPanel := s.ap[(ir/gemmMR)*kc*gemmMR:]
						gemmMicroKernel(apPanel, bpPanel, kc, acc)
						writebackTile(acc, nr, alpha, beta, firstK,
							c[(ic+ir)*ldc+jc+jr:], ldc, mrr, nrr)
					}
				}
			}
		}
	}
}

// writebackTile folds one accumulated micro-tile into C:
// C = beta*C + alpha*acc on the first KC block, C += alpha*acc on the
// rest. mrr/nrr clip edge tiles; acc rows are gemmNR wide. This is the
// only code that writes C on the blocked path, shared by every
// micro-kernel, which keeps edge and full tiles bit-identical.
func writebackTile(acc *[gemmMR * gemmNRMax]float32, nr int, alpha, beta float32, firstK bool, c []float32, ldc, mrr, nrr int) {
	for i := 0; i < mrr; i++ {
		ci := c[i*ldc : i*ldc+nrr]
		ai := acc[i*nr:]
		switch {
		case !firstK:
			for j := range ci {
				ci[j] += alpha * ai[j]
			}
		case beta == 0:
			// beta == 0 must not read C (it may hold garbage/NaN).
			for j := range ci {
				ci[j] = alpha * ai[j]
			}
		default:
			for j := range ci {
				ci[j] = beta*ci[j] + alpha*ai[j]
			}
		}
	}
}

// packA copies op(A)[ic:ic+mc, pc:pc+kc] into mr-tall micro-panels:
// panel p holds rows [p*mr, p*mr+mr) as kc groups of mr contiguous
// values, zero-padded when the block has fewer than mr rows left. The
// zero padding is what lets edge tiles share the full micro-kernel.
func packA(dst []float32, transA Transpose, a []float32, lda, ic, mc, pc, kc int) {
	idx := 0
	for ir := 0; ir < mc; ir += gemmMR {
		rows := min(gemmMR, mc-ir)
		if transA == NoTrans {
			base := (ic + ir) * lda
			for l := 0; l < kc; l++ {
				col := base + pc + l
				for i := 0; i < rows; i++ {
					dst[idx] = a[col+i*lda]
					idx++
				}
				for i := rows; i < gemmMR; i++ {
					dst[idx] = 0
					idx++
				}
			}
		} else {
			// op(A)[i, l] = A[l, i]: row pc+l of the stored matrix is
			// contiguous over i, so the pack is a strided gather of
			// mr-length runs.
			for l := 0; l < kc; l++ {
				src := a[(pc+l)*lda+ic+ir:]
				for i := 0; i < rows; i++ {
					dst[idx] = src[i]
					idx++
				}
				for i := rows; i < gemmMR; i++ {
					dst[idx] = 0
					idx++
				}
			}
		}
	}
}

// packB copies op(B)[pc:pc+kc, jc:jc+nc] into nr-wide micro-panels:
// panel p holds columns [p*nr, p*nr+nr) as kc groups of nr contiguous
// values, zero-padded on the right edge.
func packB(dst []float32, transB Transpose, b []float32, ldb, pc, kc, jc, nc int) {
	nr := gemmNR
	idx := 0
	for jr := 0; jr < nc; jr += nr {
		cols := min(nr, nc-jr)
		if transB == NoTrans {
			for l := 0; l < kc; l++ {
				src := b[(pc+l)*ldb+jc+jr:]
				for j := 0; j < cols; j++ {
					dst[idx] = src[j]
					idx++
				}
				for j := cols; j < nr; j++ {
					dst[idx] = 0
					idx++
				}
			}
		} else {
			// op(B)[l, j] = B[j, l]: column panels of op(B) are rows of
			// the stored matrix, read with stride ldb.
			base := (jc + jr) * ldb
			for l := 0; l < kc; l++ {
				col := base + pc + l
				for j := 0; j < cols; j++ {
					dst[idx] = b[col+j*ldb]
					idx++
				}
				for j := cols; j < nr; j++ {
					dst[idx] = 0
					idx++
				}
			}
		}
	}
}

// microKernelScalar4x4 is the portable micro-kernel: a rank-kc update of
// a 4x4 tile held in 16 register accumulators, 8 contiguous float32
// loads per 32 flops. acc receives the tile with row stride gemmNR (4
// here — the scalar kernel is only active when gemmNR == 4).
func microKernelScalar4x4(ap, bp []float32, kc int, acc *[gemmMR * gemmNRMax]float32) {
	var c00, c01, c02, c03 float32
	var c10, c11, c12, c13 float32
	var c20, c21, c22, c23 float32
	var c30, c31, c32, c33 float32
	ap = ap[: 4*kc : 4*kc]
	bp = bp[: 4*kc : 4*kc]
	for l := 0; l < kc; l++ {
		al := ap[4*l : 4*l+4 : 4*l+4]
		bl := bp[4*l : 4*l+4 : 4*l+4]
		a0, a1, a2, a3 := al[0], al[1], al[2], al[3]
		b0, b1, b2, b3 := bl[0], bl[1], bl[2], bl[3]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		c20 += a2 * b0
		c21 += a2 * b1
		c22 += a2 * b2
		c23 += a2 * b3
		c30 += a3 * b0
		c31 += a3 * b1
		c32 += a3 * b2
		c33 += a3 * b3
	}
	acc[0], acc[1], acc[2], acc[3] = c00, c01, c02, c03
	acc[4], acc[5], acc[6], acc[7] = c10, c11, c12, c13
	acc[8], acc[9], acc[10], acc[11] = c20, c21, c22, c23
	acc[12], acc[13], acc[14], acc[15] = c30, c31, c32, c33
}

func roundUp(x, to int) int { return (x + to - 1) / to * to }
