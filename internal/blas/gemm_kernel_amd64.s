//go:build amd64

#include "textflag.h"

// func sgemmKernel4x16(ap, bp *float32, kc int, acc *[64]float32)
//
// Rank-kc update of a 4x16 micro-tile from packed panels:
//   ap: kc groups of 4 contiguous float32 (one column of the A panel)
//   bp: kc groups of 16 contiguous float32 (one row of the B panel)
// Accumulators: Y0..Y7 = rows 0..3, two 8-lane halves per row.
// Per step: 2 B loads + 4 A broadcasts + 8 FMAs = 64 flops.
TEXT ·sgemmKernel4x16(SB), NOSPLIT, $0-32
	MOVQ ap+0(FP), DI
	MOVQ bp+8(FP), SI
	MOVQ kc+16(FP), DX
	MOVQ acc+24(FP), R8

	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	VXORPS Y4, Y4, Y4
	VXORPS Y5, Y5, Y5
	VXORPS Y6, Y6, Y6
	VXORPS Y7, Y7, Y7

loop:
	VMOVUPS (SI), Y8             // b[0:8]
	VMOVUPS 32(SI), Y9           // b[8:16]

	VBROADCASTSS (DI), Y10       // a0
	VFMADD231PS  Y8, Y10, Y0
	VFMADD231PS  Y9, Y10, Y1

	VBROADCASTSS 4(DI), Y11      // a1
	VFMADD231PS  Y8, Y11, Y2
	VFMADD231PS  Y9, Y11, Y3

	VBROADCASTSS 8(DI), Y12      // a2
	VFMADD231PS  Y8, Y12, Y4
	VFMADD231PS  Y9, Y12, Y5

	VBROADCASTSS 12(DI), Y13     // a3
	VFMADD231PS  Y8, Y13, Y6
	VFMADD231PS  Y9, Y13, Y7

	ADDQ $16, DI
	ADDQ $64, SI
	DECQ DX
	JNE  loop

	VMOVUPS Y0, (R8)
	VMOVUPS Y1, 32(R8)
	VMOVUPS Y2, 64(R8)
	VMOVUPS Y3, 96(R8)
	VMOVUPS Y4, 128(R8)
	VMOVUPS Y5, 160(R8)
	VMOVUPS Y6, 192(R8)
	VMOVUPS Y7, 224(R8)
	VZEROUPPER
	RET

// func cpuidAsm(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidAsm(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbvAsm() (eax, edx uint32)
TEXT ·xgetbvAsm(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
