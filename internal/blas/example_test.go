package blas_test

import (
	"fmt"

	"coarsegrain/internal/blas"
	"coarsegrain/internal/par"
)

// Row-major C (2x2) = A (2x3) * B (3x2). lda/ldb/ldc are the row strides
// of the *stored* matrices; here every matrix is densely packed, so each
// stride equals the column count.
func ExampleGemm() {
	a := []float32{
		1, 2, 3,
		4, 5, 6,
	}
	b := []float32{
		7, 8,
		9, 10,
		11, 12,
	}
	c := make([]float32, 2*2)
	blas.Gemm(blas.NoTrans, blas.NoTrans, 2, 2, 3, 1, a, 3, b, 2, 0, c, 2)
	fmt.Println(c[:2])
	fmt.Println(c[2:])
	// Output:
	// [58 64]
	// [139 154]
}

// Transposing B computes C = A * Bᵀ without materializing the transpose —
// the shape every fully connected forward pass uses (X * Wᵀ with W stored
// as NumOutput x K).
func ExampleGemm_transpose() {
	x := []float32{ // 2 samples x 3 features
		1, 0, 2,
		0, 3, 1,
	}
	w := []float32{ // 2 outputs x 3 features
		1, 1, 1,
		2, 0, 1,
	}
	y := make([]float32, 2*2)
	blas.Gemm(blas.NoTrans, blas.Trans, 2, 2, 3, 1, x, 3, w, 3, 0, y, 2)
	fmt.Println(y)
	// Output: [3 4 4 1]
}

// GemmParallel splits the rows of C across a worker pool in whole
// micro-tile bands. The result is bit-identical to the serial Gemm for
// every worker count, which is what lets the fine-grain engine swap in
// BLAS-level parallelism without perturbing training.
func ExampleGemmParallel() {
	const m, n, k = 64, 48, 32
	a := make([]float32, m*k)
	b := make([]float32, k*n)
	for i := range a {
		a[i] = float32(i%7) - 3
	}
	for i := range b {
		b[i] = float32(i%5) - 2
	}
	serial := make([]float32, m*n)
	blas.Gemm(blas.NoTrans, blas.NoTrans, m, n, k, 1, a, k, b, n, 0, serial, n)

	p := par.NewPool(4)
	defer p.Close()
	parallel := make([]float32, m*n)
	blas.GemmParallel(p, blas.NoTrans, blas.NoTrans, m, n, k, 1, a, k, b, n, 0, parallel, n)

	identical := true
	for i := range serial {
		if serial[i] != parallel[i] {
			identical = false
		}
	}
	fmt.Println("bit-identical to serial:", identical)
	// Output: bit-identical to serial: true
}
