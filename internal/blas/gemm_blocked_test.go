package blas

import (
	"fmt"
	"testing"

	"coarsegrain/internal/par"
	"coarsegrain/internal/rng"
)

// refFull runs the reference kernel over all rows — the baseline every
// blocked result is differentially checked against.
func refFull(transA, transB Transpose, m, n, k int, alpha float32, a []float32, lda int, b []float32, ldb int, beta float32, c []float32, ldc int) {
	gemmRef(transA, transB, n, k, alpha, a, lda, b, ldb, beta, c, ldc, 0, m)
}

// storage returns the stored extent (rows, cols) of an operand under op.
func storage(trans Transpose, rows, cols int) (int, int) {
	if trans == Trans {
		return cols, rows
	}
	return rows, cols
}

// TestBlockedGemmDifferential sweeps the blocked kernel against gemmRef
// over odd/prime dimensions (so every M, N and K edge-tile path runs),
// all four transpose combinations, the beta values the layers use, and
// non-trivial leading strides (operands embedded in wider matrices).
//
// Tolerance: the two kernels accumulate in float32 in different orders
// (gemmRef keeps a running row sum; the blocked kernel sums KC-sized
// partials in registers). For |entries| <= 1 and K <= 384 the worst-case
// reassociation error is a few hundred ulps of the K-term dot product,
// comfortably below 1e-3 absolute; 1e-4 held over the full sweep in
// practice, so that is the bound we pin.
func TestBlockedGemmDifferential(t *testing.T) {
	r := rng.New(11, 11)
	dims := []struct{ m, n, k int }{
		{1, 7, 64},     // single row, K beyond one register tile
		{3, 5, 11},     // everything smaller than one micro-tile pair
		{4, 4, 257},    // exact micro-tile, K just past one KC block
		{13, 17, 19},   // odd primes everywhere
		{29, 31, 37},   // primes past one micro-tile in all dims
		{64, 64, 64},   // exact macro boundary
		{67, 129, 263}, // one past MC / NR / KC boundaries
		{32, 1024, 75}, // CIFAR-10-full conv1 lowered shape
	}
	for _, d := range dims {
		for _, ta := range []Transpose{NoTrans, Trans} {
			for _, tb := range []Transpose{NoTrans, Trans} {
				for _, beta := range []float32{0, 1, 0.5} {
					// Embed each operand in a matrix padded by a few
					// columns so lda/ldb/ldc exceed the minimal stride.
					arows, acols := storage(ta, d.m, d.k)
					brows, bcols := storage(tb, d.k, d.n)
					lda, ldb, ldc := acols+3, bcols+5, d.n+7
					a := randomSlice(r, arows*lda)
					b := randomSlice(r, brows*ldb)
					c0 := randomSlice(r, d.m*ldc)
					got := append([]float32(nil), c0...)
					want := append([]float32(nil), c0...)
					s := &GemmScratch{}
					GemmWithScratch(s, ta, tb, d.m, d.n, d.k, 0.75, a, lda, b, ldb, beta, got, ldc)
					refFull(ta, tb, d.m, d.n, d.k, 0.75, a, lda, b, ldb, beta, want, ldc)
					if diff := maxAbsDiff(got, want); diff > 1e-4 {
						t.Errorf("m=%d n=%d k=%d ta=%v tb=%v beta=%v: max diff %g",
							d.m, d.n, d.k, ta, tb, beta, diff)
					}
					// Padding columns of C must be untouched.
					for i := 0; i < d.m; i++ {
						for j := d.n; j < ldc; j++ {
							if got[i*ldc+j] != c0[i*ldc+j] {
								t.Fatalf("m=%d n=%d k=%d: C padding clobbered at (%d,%d)", d.m, d.n, d.k, i, j)
							}
						}
					}
				}
			}
		}
	}
}

// TestBlockedGemmAlphaZero checks the degenerate path: alpha == 0 must
// reduce to C = beta*C without reading A or B.
func TestBlockedGemmAlphaZero(t *testing.T) {
	r := rng.New(12, 12)
	m, n, k := 9, 130, 40 // blocked-path shape
	if !useBlockedGemm(n, k) {
		t.Fatal("shape unexpectedly below blocked threshold")
	}
	c0 := randomSlice(r, m*n)
	for _, beta := range []float32{0, 1, 0.5} {
		got := append([]float32(nil), c0...)
		Gemm(NoTrans, NoTrans, m, n, k, 0, make([]float32, m*k), k, make([]float32, k*n), n, beta, got, n)
		for i, v := range got {
			want := beta * c0[i]
			if v != want {
				t.Fatalf("beta=%v: c[%d] = %v, want %v", beta, i, v, want)
			}
		}
	}
}

// TestBlockedGemmBandInvariance pins the determinism contract directly:
// computing C in arbitrary (even misaligned) row bands must be
// bit-identical to the full-range call, because the coarse engine hands
// layers arbitrary sample bands.
func TestBlockedGemmBandInvariance(t *testing.T) {
	r := rng.New(13, 13)
	m, n, k := 23, 129, 300
	if !useBlockedGemm(n, k) {
		t.Fatal("shape unexpectedly below blocked threshold")
	}
	a := randomSlice(r, m*k)
	b := randomSlice(r, k*n)
	want := make([]float32, m*n)
	Gemm(NoTrans, NoTrans, m, n, k, 1, a, k, b, n, 0, want, n)
	for _, cuts := range [][]int{{0, m}, {0, 1, m}, {0, 5, 9, m}, {0, 4, 8, 12, 16, 20, m}} {
		got := make([]float32, m*n)
		for ci := 0; ci+1 < len(cuts); ci++ {
			GemmRows(NoTrans, NoTrans, m, n, k, 1, a, k, b, n, 0, got, n, cuts[ci], cuts[ci+1])
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("cuts %v: band result differs at %d: %v vs %v", cuts, i, got[i], want[i])
			}
		}
	}
}

// TestGemmParallelBlockedBitIdentical is the parallel counterpart on a
// shape large enough for the blocked path (the original parallel test's
// 37x29x31 stays on gemmRef).
func TestGemmParallelBlockedBitIdentical(t *testing.T) {
	r := rng.New(14, 14)
	m, n, k := 37, 141, 97
	if !useBlockedGemm(n, k) {
		t.Fatal("shape unexpectedly below blocked threshold")
	}
	a := randomSlice(r, m*k)
	b := randomSlice(r, k*n)
	want := make([]float32, m*n)
	Gemm(NoTrans, Trans, m, n, k, 1, a, k, b, k, 0, want, n)
	for _, workers := range []int{1, 2, 3, 5, 8, 16} {
		p := par.NewPool(workers)
		got := make([]float32, m*n)
		GemmParallel(p, NoTrans, Trans, m, n, k, 1, a, k, b, k, 0, got, n)
		p.Close()
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: parallel blocked gemm differs at %d", workers, i)
			}
		}
	}
}

// TestGemmScratchReuse checks a scratch can serve differently shaped
// calls back to back (the per-sample lowered-convolution pattern).
func TestGemmScratchReuse(t *testing.T) {
	r := rng.New(15, 15)
	s := &GemmScratch{}
	for _, d := range []struct{ m, n, k int }{{20, 576, 25}, {32, 1024, 75}, {50, 64, 500}} {
		a := randomSlice(r, d.m*d.k)
		b := randomSlice(r, d.k*d.n)
		got := make([]float32, d.m*d.n)
		want := make([]float32, d.m*d.n)
		GemmWithScratch(s, NoTrans, NoTrans, d.m, d.n, d.k, 1, a, d.k, b, d.n, 0, got, d.n)
		refFull(NoTrans, NoTrans, d.m, d.n, d.k, 1, a, d.k, b, d.n, 0, want, d.n)
		if diff := maxAbsDiff(got, want); diff > 1e-4 {
			t.Fatalf("shape %+v after reuse: max diff %g", d, diff)
		}
	}
}

func TestCheckGemmNamesOperand(t *testing.T) {
	capture := func(f func()) (msg string) {
		defer func() { msg = fmt.Sprint(recover()) }()
		f()
		return ""
	}
	a := make([]float32, 64)
	for _, tc := range []struct {
		want string
		f    func()
	}{
		{"gemm A: lda", func() { Gemm(NoTrans, NoTrans, 2, 2, 4, 1, a, 1, a, 2, 0, a, 2) }},
		{"gemm B: ldb", func() { Gemm(NoTrans, NoTrans, 2, 4, 2, 1, a, 2, a, 1, 0, a, 4) }},
		{"gemm C: ldc", func() { Gemm(NoTrans, NoTrans, 2, 4, 2, 1, a, 2, a, 4, 0, a, 1) }},
		{"gemm A too short", func() { Gemm(NoTrans, NoTrans, 40, 1, 2, 1, a, 2, a, 1, 0, a, 1) }},
		{"gemm B too short", func() { Gemm(NoTrans, NoTrans, 1, 2, 40, 1, a, 40, a, 2, 0, a, 2) }},
		{"gemm C too short", func() { Gemm(NoTrans, NoTrans, 40, 2, 1, 1, a, 1, a, 2, 0, a, 2) }},
	} {
		msg := capture(tc.f)
		if msg == "" {
			t.Fatalf("%q case: expected panic", tc.want)
		}
		if !contains(msg, tc.want) {
			t.Fatalf("panic %q does not name operand (want substring %q)", msg, tc.want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// netGemmShapes are the Gemm shapes the two benchmark networks actually
// emit on their hot paths (per-sample lowered convolutions, batched inner
// products): measuring these, not synthetic squares, is what PERFORMANCE.md
// reports.
var netGemmShapes = []struct {
	name    string
	ta, tb  Transpose
	m, n, k int
}{
	{"lenet-conv1-fwd", NoTrans, NoTrans, 20, 576, 25},  // W(20x25) * col(25x576)
	{"lenet-conv2-fwd", NoTrans, NoTrans, 50, 64, 500},  // W(50x500) * col(500x64)
	{"lenet-conv2-bwdW", NoTrans, Trans, 50, 500, 64},   // dTop * colᵀ
	{"lenet-conv2-bwdX", Trans, NoTrans, 500, 64, 50},   // Wᵀ * dTop
	{"lenet-ip1-fwd", NoTrans, Trans, 64, 500, 800},     // X(64x800) * Wᵀ
	{"lenet-ip1-bwdW", Trans, NoTrans, 500, 800, 64},    // dYᵀ * X
	{"cifar-conv1-fwd", NoTrans, NoTrans, 32, 1024, 75}, // W(32x75) * col(75x1024)
	{"cifar-conv2-fwd", NoTrans, NoTrans, 32, 256, 800}, // W(32x800) * col(800x256)
	{"cifar-conv3-fwd", NoTrans, NoTrans, 64, 64, 800},  // W(64x800) * col(800x64)
	{"cifar-conv1-bwdX", Trans, NoTrans, 75, 1024, 32},  // Wᵀ * dTop
}

// BenchmarkGemmNetShapes times blocked vs reference on the real network
// shapes; the impl=ref numbers are the seed kernel's (the i-k-j loop is
// unchanged), so one run of this benchmark is the before/after table.
func BenchmarkGemmNetShapes(b *testing.B) {
	r := rng.New(16, 16)
	for _, sh := range netGemmShapes {
		arows, acols := storage(sh.ta, sh.m, sh.k)
		brows, bcols := storage(sh.tb, sh.k, sh.n)
		a := randomSlice(r, arows*acols)
		bm := randomSlice(r, brows*bcols)
		c := make([]float32, sh.m*sh.n)
		flops := 2 * int64(sh.m) * int64(sh.n) * int64(sh.k)
		for _, impl := range []string{"ref", "blocked"} {
			b.Run(fmt.Sprintf("%s/impl=%s", sh.name, impl), func(b *testing.B) {
				s := &GemmScratch{}
				b.SetBytes(flops) // report "MB/s" as MFLOP/s
				for i := 0; i < b.N; i++ {
					if impl == "ref" {
						gemmRef(sh.ta, sh.tb, sh.n, sh.k, 1, a, acols, bm, bcols, 0, c, sh.n, 0, sh.m)
					} else {
						GemmWithScratch(s, sh.ta, sh.tb, sh.m, sh.n, sh.k, 1, a, acols, bm, bcols, 0, c, sh.n)
					}
				}
			})
		}
	}
}
