package data

import (
	"fmt"

	"coarsegrain/internal/layers"
)

// Shard presents one replica's slice of a data stream for synchronous
// data-parallel training (the paper's multi-GPU compatibility, §1): a
// global batch of GlobalBatch samples is split into Replicas contiguous
// shards, and replica r sees exactly the samples
//
//	[g*GlobalBatch + r*localBatch, g*GlobalBatch + (r+1)*localBatch)
//
// of every global batch g. Training R replicas on their shards and
// summing their gradients therefore computes exactly the same global-batch
// gradient as one device processing the whole batch — which is what keeps
// the convergence invariant (no training parameter changes).
type Shard struct {
	src         layers.Source
	replica     int
	replicas    int
	globalBatch int
	localBatch  int
}

var _ layers.Source = (*Shard)(nil)

// NewShard creates replica `replica` of `replicas` over src with the given
// global batch size. The global batch must divide evenly by the replica
// count, and the source length by the global batch (so epochs align
// across replicas).
func NewShard(src layers.Source, replica, replicas, globalBatch int) (*Shard, error) {
	if replicas < 1 || replica < 0 || replica >= replicas {
		return nil, fmt.Errorf("data: bad shard %d of %d", replica, replicas)
	}
	if globalBatch%replicas != 0 {
		return nil, fmt.Errorf("data: global batch %d not divisible by %d replicas", globalBatch, replicas)
	}
	if src.Len()%globalBatch != 0 {
		return nil, fmt.Errorf("data: source length %d not divisible by global batch %d", src.Len(), globalBatch)
	}
	return &Shard{
		src: src, replica: replica, replicas: replicas,
		globalBatch: globalBatch, localBatch: globalBatch / replicas,
	}, nil
}

// LocalBatch returns the per-replica batch size.
func (s *Shard) LocalBatch() int { return s.localBatch }

// Len implements layers.Source.
func (s *Shard) Len() int { return s.src.Len() / s.replicas }

// SampleShape implements layers.Source.
func (s *Shard) SampleShape() []int { return s.src.SampleShape() }

// Classes implements layers.Source.
func (s *Shard) Classes() int { return s.src.Classes() }

// Read implements layers.Source: local index i maps into global batch
// i/localBatch at in-shard position i%localBatch.
func (s *Shard) Read(i int, out []float32) int {
	g := i / s.localBatch
	pos := i % s.localBatch
	global := g*s.globalBatch + s.replica*s.localBatch + pos
	return s.src.Read(global%s.src.Len(), out)
}
