package data

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"coarsegrain/internal/layers"
)

// ReadIDX parses the IDX format used by the MNIST distribution
// (http://yann.lecun.com/exdb/mnist/): a magic number encoding the element
// type and dimension count, big-endian dimension sizes, then raw data.
// Only unsigned-byte element type (0x08) is supported, which covers both
// the image and label files.
func ReadIDX(r io.Reader) (dims []int, payload []byte, err error) {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, nil, fmt.Errorf("idx: reading magic: %w", err)
	}
	if magic[0] != 0 || magic[1] != 0 {
		return nil, nil, fmt.Errorf("idx: bad magic %x", magic)
	}
	if magic[2] != 0x08 {
		return nil, nil, fmt.Errorf("idx: unsupported element type 0x%02x (only ubyte)", magic[2])
	}
	nd := int(magic[3])
	if nd == 0 || nd > 4 {
		return nil, nil, fmt.Errorf("idx: unsupported dimension count %d", nd)
	}
	dims = make([]int, nd)
	total := 1
	for i := range dims {
		var v uint32
		if err := binary.Read(r, binary.BigEndian, &v); err != nil {
			return nil, nil, fmt.Errorf("idx: reading dim %d: %w", i, err)
		}
		if v > 1<<28 {
			return nil, nil, fmt.Errorf("idx: dimension %d too large: %d", i, v)
		}
		dims[i] = int(v)
		total *= int(v)
	}
	payload = make([]byte, total)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, nil, fmt.Errorf("idx: reading %d bytes of data: %w", total, err)
	}
	return dims, payload, nil
}

// readMaybeGzip reads path fully with bounded retry/backoff
// (DefaultRetry), transparently decompressing ".gz" files in memory.
func readMaybeGzip(path string) ([]byte, error) {
	raw, err := readFileRetry(path, DefaultRetry)
	if err != nil {
		return nil, err
	}
	if !strings.HasSuffix(path, ".gz") {
		return raw, nil
	}
	gz, err := gzip.NewReader(bytes.NewReader(raw))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out, err := io.ReadAll(gz)
	if cerr := gz.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return out, nil
}

// LoadMNISTFiles reads an MNIST image/label file pair into an in-memory
// dataset with pixel values scaled to [0, 1] (Caffe's 1/256 transform).
// File reads go through the bounded retry policy (DefaultRetry).
func LoadMNISTFiles(imagePath, labelPath string) (*InMemory, error) {
	imraw, err := readMaybeGzip(imagePath)
	if err != nil {
		return nil, err
	}
	idims, ipix, err := ReadIDX(bytes.NewReader(imraw))
	if err != nil {
		return nil, fmt.Errorf("mnist images: %w", err)
	}
	if len(idims) != 3 {
		return nil, fmt.Errorf("mnist images: want 3 dims, got %v", idims)
	}
	lbraw, err := readMaybeGzip(labelPath)
	if err != nil {
		return nil, err
	}
	ldims, labs, err := ReadIDX(bytes.NewReader(lbraw))
	if err != nil {
		return nil, fmt.Errorf("mnist labels: %w", err)
	}
	if len(ldims) != 1 || ldims[0] != idims[0] {
		return nil, fmt.Errorf("mnist: %v labels for %v images", ldims, idims)
	}
	n, h, w := idims[0], idims[1], idims[2]
	ds := NewInMemory([]int{1, h, w}, 10)
	for i := 0; i < n; i++ {
		px := make([]float32, h*w)
		for j := range px {
			px[j] = float32(ipix[i*h*w+j]) / 256.0
		}
		if err := ds.Add(px, int(labs[i])); err != nil {
			return nil, err
		}
	}
	return ds, nil
}

// mnistCandidates lists the conventional file names of the MNIST training
// set, with and without gzip.
var mnistCandidates = [][2]string{
	{"train-images-idx3-ubyte", "train-labels-idx1-ubyte"},
	{"train-images-idx3-ubyte.gz", "train-labels-idx1-ubyte.gz"},
	{"train-images.idx3-ubyte", "train-labels.idx1-ubyte"},
}

// LoadMNIST returns the real MNIST training set when its files exist under
// dir, and otherwise a synthetic source of n samples — the substitution
// documented in DESIGN.md §4.3.
func LoadMNIST(dir string, n int, seed uint64) (layers.Source, bool) {
	for _, c := range mnistCandidates {
		ip := filepath.Join(dir, c[0])
		lp := filepath.Join(dir, c[1])
		if _, err := os.Stat(ip); err != nil {
			continue
		}
		if ds, err := LoadMNISTFiles(ip, lp); err == nil {
			if n > 0 && n < ds.Len() {
				return Subset{Src: ds, N: n}, true
			}
			return ds, true
		}
	}
	return NewSyntheticMNIST(n, seed), false
}
