package data

import (
	"coarsegrain/internal/layers"
	"coarsegrain/internal/rng"
)

// digitGlyphs is a 5x7 bitmap font for the digits 0-9. Each string row is
// 5 cells; '#' marks ink. The glyphs are distinct enough that a LeNet-style
// network separates the rendered classes easily, while jitter, scaling and
// noise keep the task non-trivial.
var digitGlyphs = [10][7]string{
	{" ### ", "#   #", "#  ##", "# # #", "##  #", "#   #", " ### "}, // 0
	{"  #  ", " ##  ", "  #  ", "  #  ", "  #  ", "  #  ", " ### "}, // 1
	{" ### ", "#   #", "    #", "  ## ", " #   ", "#    ", "#####"}, // 2
	{" ### ", "#   #", "    #", "  ## ", "    #", "#   #", " ### "}, // 3
	{"   # ", "  ## ", " # # ", "#  # ", "#####", "   # ", "   # "}, // 4
	{"#####", "#    ", "#### ", "    #", "    #", "#   #", " ### "}, // 5
	{" ### ", "#    ", "#    ", "#### ", "#   #", "#   #", " ### "}, // 6
	{"#####", "    #", "   # ", "  #  ", "  #  ", "  #  ", "  #  "}, // 7
	{" ### ", "#   #", "#   #", " ### ", "#   #", "#   #", " ### "}, // 8
	{" ### ", "#   #", "#   #", " ####", "    #", "    #", " ### "}, // 9
}

// SyntheticMNIST generates MNIST-shaped samples (1x28x28, values in
// [0, 1], 10 classes) on the fly. Sample i is a pure function of (seed, i),
// so Read is safe for concurrent use and the dataset needs no storage.
type SyntheticMNIST struct {
	seed uint64
	n    int
}

var _ layers.Source = (*SyntheticMNIST)(nil)

// NewSyntheticMNIST creates a generator of n samples.
func NewSyntheticMNIST(n int, seed uint64) *SyntheticMNIST {
	return &SyntheticMNIST{seed: seed, n: n}
}

// Len implements layers.Source.
func (d *SyntheticMNIST) Len() int { return d.n }

// SampleShape implements layers.Source.
func (d *SyntheticMNIST) SampleShape() []int { return []int{1, 28, 28} }

// Classes implements layers.Source.
func (d *SyntheticMNIST) Classes() int { return 10 }

// Read implements layers.Source: renders digit (i mod 10) with
// deterministic per-sample jitter, thickness and noise.
func (d *SyntheticMNIST) Read(i int, out []float32) int {
	r := rng.New(d.seed, uint64(i)+1)
	label := i % 10
	for p := range out {
		out[p] = 0
	}
	// Random placement/scaling of the 5x7 glyph inside the 28x28 canvas.
	cellW := 3 + r.Intn(2) // 3..4 pixels per glyph cell horizontally
	cellH := 3 + r.Intn(2)
	gw, gh := 5*cellW, 7*cellH
	ox := (28-gw)/2 + r.Intn(5) - 2
	oy := (28-gh)/2 + r.Intn(5) - 2
	ink := 0.75 + 0.25*r.Float32()
	glyph := &digitGlyphs[label]
	for gy := 0; gy < 7; gy++ {
		row := glyph[gy]
		for gx := 0; gx < 5; gx++ {
			if row[gx] != '#' {
				continue
			}
			for dy := 0; dy < cellH; dy++ {
				for dx := 0; dx < cellW; dx++ {
					x, y := ox+gx*cellW+dx, oy+gy*cellH+dy
					if x >= 0 && x < 28 && y >= 0 && y < 28 {
						out[y*28+x] = ink
					}
				}
			}
		}
	}
	// Additive pixel noise, clamped to [0, 1].
	for p := range out {
		v := out[p] + 0.08*r.NormFloat32()
		if v < 0 {
			v = 0
		} else if v > 1 {
			v = 1
		}
		out[p] = v
	}
	return label
}
