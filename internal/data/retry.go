package data

import (
	"fmt"
	"io"
	"os"
	"time"
)

// openFile is the seam through which every dataset loader opens a file.
// The fault-injection harness (internal/faultinject) swaps it to model
// flaky storage; production code never touches it.
var openFile = func(path string) (io.ReadCloser, error) { return os.Open(path) }

// SetOpenFile replaces the loader file-open hook and returns a function
// restoring the previous one. Not safe for concurrent use with loads in
// flight; it exists for tests and fault drills.
func SetOpenFile(open func(string) (io.ReadCloser, error)) (restore func()) {
	prev := openFile
	openFile = open
	return func() { openFile = prev }
}

// RetryPolicy bounds how persistently the loaders re-read a failing
// dataset file. Transient storage failures (network filesystems, object
// stores) are common enough at training scale that a single hiccup must
// not kill a run, but the retry is strictly bounded — a genuinely missing
// or unreadable file still surfaces promptly.
type RetryPolicy struct {
	// Attempts is the total number of tries (default 3).
	Attempts int
	// Backoff is the sleep before the first retry, doubled after each
	// subsequent failure (default 5ms).
	Backoff time.Duration
}

// DefaultRetry is the policy the MNIST/CIFAR loaders use. Tests shrink
// the backoff to keep fault drills fast.
var DefaultRetry = RetryPolicy{Attempts: 3, Backoff: 5 * time.Millisecond}

// readFileRetry reads path fully under the policy: each attempt opens and
// reads the whole file, so a failure partway through an attempt (a
// truncated read) discards the partial data instead of corrupting the
// dataset being assembled.
func readFileRetry(path string, pol RetryPolicy) ([]byte, error) {
	if pol.Attempts <= 0 {
		pol.Attempts = 1
	}
	var last error
	for a := 0; a < pol.Attempts; a++ {
		if a > 0 {
			time.Sleep(pol.Backoff << (a - 1))
		}
		rc, err := openFile(path)
		if err != nil {
			last = err
			continue
		}
		raw, err := io.ReadAll(rc)
		cerr := rc.Close()
		if err == nil && cerr == nil {
			return raw, nil
		}
		if err == nil {
			err = cerr
		}
		last = err
	}
	return nil, fmt.Errorf("data: reading %s failed after %d attempts: %w", path, pol.Attempts, last)
}
