package data

import (
	"math"

	"coarsegrain/internal/layers"
	"coarsegrain/internal/rng"
)

// SyntheticCIFAR generates CIFAR-10-shaped samples (3x32x32, values in
// [0, 1], 10 classes). Each class is a distinct procedural texture — a
// class-specific base color plus a class-specific spatial pattern
// (orientation/frequency of a sinusoidal grating, radial rings or a
// checkerboard) — with per-sample phase, contrast and noise. The classes
// are separable by a small CNN but not by color alone.
type SyntheticCIFAR struct {
	seed uint64
	n    int
}

var _ layers.Source = (*SyntheticCIFAR)(nil)

// NewSyntheticCIFAR creates a generator of n samples.
func NewSyntheticCIFAR(n int, seed uint64) *SyntheticCIFAR {
	return &SyntheticCIFAR{seed: seed, n: n}
}

// Len implements layers.Source.
func (d *SyntheticCIFAR) Len() int { return d.n }

// SampleShape implements layers.Source.
func (d *SyntheticCIFAR) SampleShape() []int { return []int{3, 32, 32} }

// Classes implements layers.Source.
func (d *SyntheticCIFAR) Classes() int { return 10 }

// classBase holds the per-class texture parameters: base RGB and pattern.
var cifarClasses = [10]struct {
	r, g, b float32
	pattern int     // 0 grating, 1 rings, 2 checker
	angle   float64 // grating orientation
	freq    float64 // spatial frequency
}{
	{0.55, 0.65, 0.90, 0, 0.0, 0.35},             // airplane: sky-blue horizontal grating
	{0.55, 0.55, 0.60, 0, math.Pi / 2, 0.55},     // automobile: gray vertical grating
	{0.45, 0.70, 0.45, 1, 0, 0.45},               // bird: green rings
	{0.75, 0.60, 0.40, 2, 0, 0.30},               // cat: tan coarse checker
	{0.55, 0.45, 0.30, 0, math.Pi / 4, 0.50},     // deer: brown diagonal grating
	{0.65, 0.55, 0.45, 2, 0, 0.55},               // dog: warm fine checker
	{0.35, 0.65, 0.35, 1, 0, 0.75},               // frog: green dense rings
	{0.60, 0.50, 0.40, 0, 3 * math.Pi / 4, 0.40}, // horse: anti-diagonal grating
	{0.40, 0.55, 0.80, 1, 0, 0.25},               // ship: blue wide rings
	{0.70, 0.35, 0.35, 0, math.Pi / 2, 0.25},     // truck: red wide vertical grating
}

// Read implements layers.Source.
func (d *SyntheticCIFAR) Read(i int, out []float32) int {
	r := rng.New(d.seed, uint64(i)+1)
	label := i % 10
	c := &cifarClasses[label]

	phase := 2 * math.Pi * r.Float64()
	contrast := 0.25 + 0.2*r.Float64()
	cx := 16 + 6*(r.Float64()-0.5)
	cy := 16 + 6*(r.Float64()-0.5)
	cosA, sinA := math.Cos(c.angle), math.Sin(c.angle)

	for y := 0; y < 32; y++ {
		for x := 0; x < 32; x++ {
			var t float64
			switch c.pattern {
			case 0: // oriented sinusoidal grating
				u := float64(x)*cosA + float64(y)*sinA
				t = math.Sin(u*c.freq*2 + phase)
			case 1: // concentric rings
				dx, dy := float64(x)-cx, float64(y)-cy
				t = math.Sin(math.Sqrt(dx*dx+dy*dy)*c.freq*2 + phase)
			case 2: // checkerboard
				period := int(math.Round(3 / c.freq))
				if period < 2 {
					period = 2
				}
				if ((x/period)+(y/period))%2 == 0 {
					t = 1
				} else {
					t = -1
				}
			}
			mod := float32(contrast * t)
			idx := y*32 + x
			out[0*1024+idx] = clamp01(c.r + mod + 0.06*r.NormFloat32())
			out[1*1024+idx] = clamp01(c.g + mod + 0.06*r.NormFloat32())
			out[2*1024+idx] = clamp01(c.b + mod + 0.06*r.NormFloat32())
		}
	}
	return label
}

func clamp01(v float32) float32 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
