package data

import (
	"math"
	"testing"
)

// gridSource produces a single deterministic sample whose pixel value at
// (c, y, x) is c*10000 + y*100 + x — handy for checking geometry.
type gridSource struct{ c, h, w int }

func (g gridSource) Len() int           { return 4 }
func (g gridSource) SampleShape() []int { return []int{g.c, g.h, g.w} }
func (g gridSource) Classes() int       { return 4 }
func (g gridSource) Read(i int, out []float32) int {
	for c := 0; c < g.c; c++ {
		for y := 0; y < g.h; y++ {
			for x := 0; x < g.w; x++ {
				out[(c*g.h+y)*g.w+x] = float32(c*10000 + y*100 + x)
			}
		}
	}
	return i
}

func TestTransformIdentity(t *testing.T) {
	src := gridSource{c: 2, h: 4, w: 4}
	tr, err := NewTransformed(src, Transform{})
	if err != nil {
		t.Fatal(err)
	}
	raw := make([]float32, 2*4*4)
	out := make([]float32, 2*4*4)
	src.Read(0, raw)
	if lab := tr.Read(0, out); lab != 0 {
		t.Fatalf("label %d", lab)
	}
	for i := range raw {
		if out[i] != raw[i] {
			t.Fatal("identity transform changed values")
		}
	}
	if tr.Len() != 4 || tr.Classes() != 4 {
		t.Fatal("metadata lost")
	}
}

func TestTransformScaleAndMean(t *testing.T) {
	src := gridSource{c: 2, h: 2, w: 2}
	tr, err := NewTransformed(src, Transform{Scale: 0.5, MeanValue: []float32{100, 10100}})
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float32, 2*2*2)
	tr.Read(0, out)
	// Channel 0 pixel (0,0) = 0; (0 - 100) * 0.5 = -50.
	if out[0] != -50 {
		t.Fatalf("out[0] = %v, want -50", out[0])
	}
	// Channel 1 pixel (0,0) = 10000; (10000-10100)*0.5 = -50.
	if out[4] != -50 {
		t.Fatalf("out[4] = %v, want -50", out[4])
	}
}

func TestTransformCenterCrop(t *testing.T) {
	src := gridSource{c: 1, h: 6, w: 6}
	tr, err := NewTransformed(src, Transform{Crop: 4}) // test mode: center
	if err != nil {
		t.Fatal(err)
	}
	if s := tr.SampleShape(); s[1] != 4 || s[2] != 4 {
		t.Fatalf("cropped shape %v", s)
	}
	out := make([]float32, 16)
	tr.Read(0, out)
	// Center crop offset (1,1): top-left output pixel = y=1,x=1 -> 101.
	if out[0] != 101 {
		t.Fatalf("center crop top-left = %v, want 101", out[0])
	}
}

func TestTransformRandomCropStaysInBounds(t *testing.T) {
	src := gridSource{c: 1, h: 8, w: 8}
	tr, err := NewTransformed(src, Transform{Crop: 5, Train: true, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float32, 25)
	offsets := map[float32]bool{}
	for i := 0; i < 4; i++ {
		tr.Read(i, out)
		// Top-left value encodes the offset: y*100 + x with y,x in [0,3].
		v := out[0]
		y := int(v) / 100
		x := int(v) % 100
		if y < 0 || y > 3 || x < 0 || x > 3 {
			t.Fatalf("crop offset out of bounds: %v", v)
		}
		offsets[v] = true
		// Determinism: same index -> same crop.
		out2 := make([]float32, 25)
		tr.Read(i, out2)
		if out2[0] != v {
			t.Fatal("random crop not deterministic per index")
		}
	}
}

func TestTransformMirror(t *testing.T) {
	src := gridSource{c: 1, h: 2, w: 4}
	tr, err := NewTransformed(src, Transform{Mirror: true, Train: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float32, 8)
	sawMirrored, sawPlain := false, false
	for i := 0; i < 4; i++ {
		tr.Read(i, out)
		switch out[0] {
		case 0: // row starts 0,1,2,3
			sawPlain = true
			if out[1] != 1 {
				t.Fatal("plain row wrong")
			}
		case 3: // mirrored row starts 3,2,1,0
			sawMirrored = true
			if out[1] != 2 {
				t.Fatal("mirrored row wrong")
			}
		default:
			t.Fatalf("unexpected first pixel %v", out[0])
		}
	}
	if !sawMirrored || !sawPlain {
		t.Fatalf("mirroring never varied (mirrored=%v plain=%v)", sawMirrored, sawPlain)
	}
}

func TestTransformTestModeDeterministic(t *testing.T) {
	src := NewSyntheticCIFAR(8, 5)
	tr, err := NewTransformed(src, Transform{Crop: 28, Mirror: true, Train: false, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	a := make([]float32, 3*28*28)
	b := make([]float32, 3*28*28)
	tr.Read(3, a)
	tr.Read(3, b)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("test-mode transform not deterministic")
		}
	}
}

func TestTransformValidation(t *testing.T) {
	src := gridSource{c: 2, h: 4, w: 4}
	if _, err := NewTransformed(src, Transform{Crop: 5}); err == nil {
		t.Fatal("oversized crop accepted")
	}
	if _, err := NewTransformed(src, Transform{MeanValue: []float32{1, 2, 3}}); err == nil {
		t.Fatal("wrong mean count accepted")
	}
	if _, err := NewTransformed(badShapeSource{}, Transform{}); err == nil {
		t.Fatal("non-CHW source accepted")
	}
}

type badShapeSource struct{}

func (badShapeSource) Len() int                { return 1 }
func (badShapeSource) SampleShape() []int      { return []int{4} }
func (badShapeSource) Classes() int            { return 2 }
func (badShapeSource) Read(int, []float32) int { return 0 }

func TestTransformKeepsValuesFinite(t *testing.T) {
	src := NewSyntheticMNIST(16, 2)
	tr, err := NewTransformed(src, Transform{Scale: 2, MeanValue: []float32{0.5}, Crop: 24, Mirror: true, Train: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float32, 24*24)
	for i := 0; i < 16; i++ {
		tr.Read(i, out)
		for _, v := range out {
			if math.IsNaN(float64(v)) || v < -2 || v > 2 {
				t.Fatalf("value %v out of expected range", v)
			}
		}
	}
}
