package data

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"coarsegrain/internal/layers"
)

// cifarRecordLen is one CIFAR-10 binary record: 1 label byte + 3*32*32
// pixel bytes in CHW order.
const cifarRecordLen = 1 + 3*32*32

// ReadCIFAR10Binary parses one CIFAR-10 binary batch file
// (https://www.cs.toronto.edu/~kriz/cifar.html, "binary version") and
// appends its samples to ds, scaling pixels to [0, 1].
func ReadCIFAR10Binary(r io.Reader, ds *InMemory) error {
	buf := make([]byte, cifarRecordLen)
	for {
		_, err := io.ReadFull(r, buf)
		if err == io.EOF {
			return nil
		}
		if err == io.ErrUnexpectedEOF {
			return fmt.Errorf("cifar: truncated record")
		}
		if err != nil {
			return err
		}
		label := int(buf[0])
		px := make([]float32, 3*32*32)
		for j := range px {
			px[j] = float32(buf[1+j]) / 256.0
		}
		if err := ds.Add(px, label); err != nil {
			return err
		}
	}
}

// LoadCIFAR10Files reads a set of CIFAR-10 binary batch files into one
// in-memory dataset. Each file is read whole with bounded retry/backoff
// (DefaultRetry), so a transient storage failure mid-file is retried from
// the start instead of leaving a half-parsed batch in the dataset.
func LoadCIFAR10Files(paths ...string) (*InMemory, error) {
	ds := NewInMemory([]int{3, 32, 32}, 10)
	for _, p := range paths {
		raw, err := readFileRetry(p, DefaultRetry)
		if err != nil {
			return nil, err
		}
		if err := ReadCIFAR10Binary(bytes.NewReader(raw), ds); err != nil {
			return nil, fmt.Errorf("%s: %w", p, err)
		}
	}
	return ds, nil
}

// LoadCIFAR10 returns the real CIFAR-10 training set when its binary batch
// files exist under dir (directly or under cifar-10-batches-bin/), and
// otherwise a synthetic source of n samples.
func LoadCIFAR10(dir string, n int, seed uint64) (layers.Source, bool) {
	for _, sub := range []string{"", "cifar-10-batches-bin"} {
		base := filepath.Join(dir, sub)
		var paths []string
		for i := 1; i <= 5; i++ {
			p := filepath.Join(base, fmt.Sprintf("data_batch_%d.bin", i))
			if _, err := os.Stat(p); err == nil {
				paths = append(paths, p)
			}
		}
		if len(paths) == 0 {
			continue
		}
		if ds, err := LoadCIFAR10Files(paths...); err == nil {
			if n > 0 && n < ds.Len() {
				return Subset{Src: ds, N: n}, true
			}
			return ds, true
		}
	}
	return NewSyntheticCIFAR(n, seed), false
}
