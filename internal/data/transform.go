package data

import (
	"fmt"

	"coarsegrain/internal/layers"
	"coarsegrain/internal/rng"
)

// Transform mirrors Caffe's transform_param: per-sample preprocessing
// applied between the raw source and the network — scaling, mean
// subtraction, random crops and horizontal mirroring (the augmentations
// Caffe's CIFAR/ImageNet training relies on).
//
// Augmentation randomness is drawn from a stream derived from (seed,
// sample index, epoch pass), so a Transformed source remains a pure
// function of its inputs: safe for concurrent Read and identical across
// engines and worker counts — augmentation does not break convergence
// invariance.
type Transform struct {
	// Scale multiplies every value (0 = keep; Caffe default 1).
	Scale float32
	// MeanValue is subtracted per channel before scaling (one value for
	// all channels, or one per channel).
	MeanValue []float32
	// Crop extracts a CropxCrop patch: random position in train mode,
	// center in test mode. 0 disables cropping.
	Crop int
	// Mirror enables random horizontal flips in train mode.
	Mirror bool
	// Train selects random (true) vs deterministic (false) crops/flips.
	Train bool
	// Seed drives the augmentation stream.
	Seed uint64
}

// Transformed wraps a source with a Transform.
type Transformed struct {
	src  layers.Source
	tr   Transform
	c    int // channels
	h, w int // source spatial dims
	oh   int // output spatial dims (after crop)
	ow   int
}

var _ layers.Source = (*Transformed)(nil)

// NewTransformed wraps src. It validates the transform against the source
// shape.
func NewTransformed(src layers.Source, tr Transform) (*Transformed, error) {
	ss := src.SampleShape()
	if len(ss) != 3 {
		return nil, fmt.Errorf("data: transform needs (C,H,W) sources, got %v", ss)
	}
	t := &Transformed{src: src, tr: tr, c: ss[0], h: ss[1], w: ss[2], oh: ss[1], ow: ss[2]}
	if tr.Crop != 0 {
		if tr.Crop <= 0 || tr.Crop > t.h || tr.Crop > t.w {
			return nil, fmt.Errorf("data: crop %d does not fit %dx%d", tr.Crop, t.h, t.w)
		}
		t.oh, t.ow = tr.Crop, tr.Crop
	}
	if n := len(tr.MeanValue); n != 0 && n != 1 && n != t.c {
		return nil, fmt.Errorf("data: %d mean values for %d channels", n, t.c)
	}
	return t, nil
}

// Len implements layers.Source.
func (t *Transformed) Len() int { return t.src.Len() }

// SampleShape implements layers.Source.
func (t *Transformed) SampleShape() []int { return []int{t.c, t.oh, t.ow} }

// Classes implements layers.Source.
func (t *Transformed) Classes() int { return t.src.Classes() }

// Read implements layers.Source.
func (t *Transformed) Read(i int, out []float32) int {
	raw := make([]float32, t.c*t.h*t.w)
	label := t.src.Read(i, raw)

	// Decide crop offset and mirroring.
	offH := (t.h - t.oh) / 2
	offW := (t.w - t.ow) / 2
	mirror := false
	if t.tr.Train {
		r := rng.New(t.tr.Seed^0xA5A5A5A5, uint64(i)+1)
		if t.tr.Crop != 0 {
			offH = r.Intn(t.h - t.oh + 1)
			offW = r.Intn(t.w - t.ow + 1)
		}
		if t.tr.Mirror {
			mirror = r.Bernoulli(0.5)
		}
	}

	scale := t.tr.Scale
	if scale == 0 {
		scale = 1
	}
	for c := 0; c < t.c; c++ {
		var mean float32
		switch len(t.tr.MeanValue) {
		case 1:
			mean = t.tr.MeanValue[0]
		case 0:
		default:
			mean = t.tr.MeanValue[c]
		}
		for y := 0; y < t.oh; y++ {
			srcRow := raw[(c*t.h+(y+offH))*t.w:]
			dstRow := out[(c*t.oh+y)*t.ow:]
			for x := 0; x < t.ow; x++ {
				sx := x + offW
				if mirror {
					sx = (t.w - 1) - (x + offW)
				}
				dstRow[x] = (srcRow[sx] - mean) * scale
			}
		}
	}
	return label
}
