// Package data provides the dataset substrates for the two benchmarks the
// paper evaluates: MNIST (28x28x1 grayscale digits, 10 classes) and
// CIFAR-10 (32x32x3 color images, 10 classes).
//
// The real datasets are not redistributable inside this repository, so the
// default sources are *deterministic synthetic generators* that preserve
// every property the paper's measurements depend on — sample dimensions,
// channel counts, class count, value range — and remain learnable (the
// benchmark networks reach high accuracy on them), which is what the
// convergence experiments need. When the real files are present on disk,
// the loaders in idx.go and cifarbin.go read them instead (see
// LoadMNIST/LoadCIFAR10 auto-detection).
package data

import (
	"fmt"

	"coarsegrain/internal/layers"
)

// InMemory is a materialized dataset: all samples resident as float32.
type InMemory struct {
	shape   []int // (C, H, W)
	classes int
	samples [][]float32
	labels  []int
}

var _ layers.Source = (*InMemory)(nil)

// NewInMemory creates an empty in-memory dataset with the given sample
// shape and class count.
func NewInMemory(shape []int, classes int) *InMemory {
	return &InMemory{shape: append([]int(nil), shape...), classes: classes}
}

// Add appends one sample. The pixel slice is retained, not copied.
func (d *InMemory) Add(pixels []float32, label int) error {
	want := 1
	for _, s := range d.shape {
		want *= s
	}
	if len(pixels) != want {
		return fmt.Errorf("data: sample has %d values, want %d", len(pixels), want)
	}
	if label < 0 || label >= d.classes {
		return fmt.Errorf("data: label %d out of range [0,%d)", label, d.classes)
	}
	d.samples = append(d.samples, pixels)
	d.labels = append(d.labels, label)
	return nil
}

// Len implements layers.Source.
func (d *InMemory) Len() int { return len(d.samples) }

// SampleShape implements layers.Source.
func (d *InMemory) SampleShape() []int { return d.shape }

// Classes implements layers.Source.
func (d *InMemory) Classes() int { return d.classes }

// Read implements layers.Source.
func (d *InMemory) Read(i int, out []float32) int {
	copy(out, d.samples[i])
	return d.labels[i]
}

// Subset is a view of the first n samples of a source — used to size
// training runs without copying.
type Subset struct {
	Src layers.Source
	N   int
}

var _ layers.Source = (*Subset)(nil)

// Len implements layers.Source.
func (s Subset) Len() int {
	if s.N < s.Src.Len() {
		return s.N
	}
	return s.Src.Len()
}

// SampleShape implements layers.Source.
func (s Subset) SampleShape() []int { return s.Src.SampleShape() }

// Classes implements layers.Source.
func (s Subset) Classes() int { return s.Src.Classes() }

// Read implements layers.Source.
func (s Subset) Read(i int, out []float32) int { return s.Src.Read(i, out) }
