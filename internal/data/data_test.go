package data

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestInMemoryAddRead(t *testing.T) {
	ds := NewInMemory([]int{1, 2, 2}, 3)
	if err := ds.Add([]float32{1, 2, 3, 4}, 2); err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 1 || ds.Classes() != 3 {
		t.Fatal("len/classes wrong")
	}
	out := make([]float32, 4)
	if lab := ds.Read(0, out); lab != 2 || out[3] != 4 {
		t.Fatalf("read lab=%d out=%v", lab, out)
	}
	if s := ds.SampleShape(); s[0] != 1 || s[1] != 2 || s[2] != 2 {
		t.Fatalf("shape %v", s)
	}
}

func TestInMemoryAddErrors(t *testing.T) {
	ds := NewInMemory([]int{1, 2, 2}, 3)
	if err := ds.Add([]float32{1, 2}, 0); err == nil {
		t.Fatal("short sample accepted")
	}
	if err := ds.Add(make([]float32, 4), 3); err == nil {
		t.Fatal("label out of range accepted")
	}
	if err := ds.Add(make([]float32, 4), -1); err == nil {
		t.Fatal("negative label accepted")
	}
}

func TestSubset(t *testing.T) {
	ds := NewSyntheticMNIST(100, 1)
	sub := Subset{Src: ds, N: 10}
	if sub.Len() != 10 {
		t.Fatalf("subset len %d", sub.Len())
	}
	big := Subset{Src: ds, N: 1000}
	if big.Len() != 100 {
		t.Fatalf("oversized subset len %d", big.Len())
	}
	out := make([]float32, 28*28)
	if sub.Read(3, out) != ds.Read(3, make([]float32, 28*28)) {
		t.Fatal("subset read differs from source")
	}
	if sub.Classes() != 10 || len(sub.SampleShape()) != 3 {
		t.Fatal("subset metadata wrong")
	}
}

func TestSyntheticMNISTProperties(t *testing.T) {
	ds := NewSyntheticMNIST(50, 7)
	if ds.Len() != 50 || ds.Classes() != 10 {
		t.Fatal("metadata wrong")
	}
	out := make([]float32, 28*28)
	seenInk := false
	for i := 0; i < 50; i++ {
		lab := ds.Read(i, out)
		if lab != i%10 {
			t.Fatalf("label of %d = %d", i, lab)
		}
		for _, v := range out {
			if v < 0 || v > 1 {
				t.Fatalf("pixel out of [0,1]: %v", v)
			}
			if v > 0.5 {
				seenInk = true
			}
		}
	}
	if !seenInk {
		t.Fatal("no ink rendered")
	}
}

func TestSyntheticMNISTDeterministicAndConcurrent(t *testing.T) {
	ds := NewSyntheticMNIST(20, 3)
	ref := make([][]float32, 20)
	for i := range ref {
		ref[i] = make([]float32, 28*28)
		ds.Read(i, ref[i])
	}
	// Concurrent reads must reproduce the same pixels (Source contract).
	var wg sync.WaitGroup
	errs := make(chan string, 20)
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out := make([]float32, 28*28)
			ds.Read(i, out)
			for j := range out {
				if out[j] != ref[i][j] {
					errs <- "concurrent read differs"
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	if msg, ok := <-errs; ok {
		t.Fatal(msg)
	}
}

func TestSyntheticMNISTClassesDiffer(t *testing.T) {
	ds := NewSyntheticMNIST(10, 5)
	a := make([]float32, 28*28)
	b := make([]float32, 28*28)
	ds.Read(0, a) // digit 0
	ds.Read(1, b) // digit 1
	var dist float64
	for i := range a {
		d := float64(a[i] - b[i])
		dist += d * d
	}
	if dist < 1 {
		t.Fatalf("digit 0 and 1 nearly identical (dist %v)", dist)
	}
}

func TestSyntheticCIFARProperties(t *testing.T) {
	ds := NewSyntheticCIFAR(30, 9)
	if ds.Len() != 30 || ds.Classes() != 10 {
		t.Fatal("metadata wrong")
	}
	if s := ds.SampleShape(); s[0] != 3 || s[1] != 32 || s[2] != 32 {
		t.Fatalf("shape %v", s)
	}
	out := make([]float32, 3*32*32)
	for i := 0; i < 30; i++ {
		if lab := ds.Read(i, out); lab != i%10 {
			t.Fatalf("label %d", lab)
		}
		for _, v := range out {
			if v < 0 || v > 1 {
				t.Fatalf("pixel out of range: %v", v)
			}
		}
	}
}

func TestSyntheticCIFARDeterministic(t *testing.T) {
	a := NewSyntheticCIFAR(5, 11)
	b := NewSyntheticCIFAR(5, 11)
	x := make([]float32, 3*32*32)
	y := make([]float32, 3*32*32)
	a.Read(3, x)
	b.Read(3, y)
	for i := range x {
		if x[i] != y[i] {
			t.Fatal("same seed produced different samples")
		}
	}
	c := NewSyntheticCIFAR(5, 12)
	c.Read(3, y)
	same := true
	for i := range x {
		if x[i] != y[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical samples")
	}
}

// writeIDX serializes an IDX file for round-trip testing.
func writeIDX(dims []int, payload []byte) []byte {
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0x08, byte(len(dims))})
	for _, d := range dims {
		binary.Write(&buf, binary.BigEndian, uint32(d))
	}
	buf.Write(payload)
	return buf.Bytes()
}

func TestReadIDXRoundTrip(t *testing.T) {
	payload := []byte{1, 2, 3, 4, 5, 6}
	raw := writeIDX([]int{2, 3}, payload)
	dims, got, err := ReadIDX(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(dims) != 2 || dims[0] != 2 || dims[1] != 3 {
		t.Fatalf("dims %v", dims)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload %v", got)
	}
}

func TestReadIDXErrors(t *testing.T) {
	if _, _, err := ReadIDX(bytes.NewReader([]byte{1, 2})); err == nil {
		t.Fatal("truncated magic accepted")
	}
	if _, _, err := ReadIDX(bytes.NewReader([]byte{9, 9, 8, 1, 0, 0, 0, 1, 5})); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, _, err := ReadIDX(bytes.NewReader([]byte{0, 0, 0x0D, 1, 0, 0, 0, 1, 0, 0, 0, 0})); err == nil {
		t.Fatal("float element type accepted")
	}
	// Truncated payload.
	raw := writeIDX([]int{10}, []byte{1, 2})
	if _, _, err := ReadIDX(bytes.NewReader(raw)); err == nil {
		t.Fatal("truncated payload accepted")
	}
}

func TestLoadMNISTFilesAndAutoDetect(t *testing.T) {
	dir := t.TempDir()
	// 3 images of 2x2, labels 0,1,2.
	images := writeIDX([]int{3, 2, 2}, []byte{
		0, 64, 128, 255,
		1, 1, 1, 1,
		200, 200, 200, 200,
	})
	lbl := writeIDX([]int{3}, []byte{0, 1, 2})
	if err := os.WriteFile(filepath.Join(dir, "train-images-idx3-ubyte"), images, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "train-labels-idx1-ubyte"), lbl, 0o644); err != nil {
		t.Fatal(err)
	}
	src, real := LoadMNIST(dir, 0, 1)
	if !real {
		t.Fatal("real files not detected")
	}
	if src.Len() != 3 {
		t.Fatalf("len %d", src.Len())
	}
	out := make([]float32, 4)
	if lab := src.Read(0, out); lab != 0 {
		t.Fatalf("label %d", lab)
	}
	if out[3] != 255.0/256.0 {
		t.Fatalf("pixel scaling wrong: %v", out[3])
	}
	// Subset request.
	sub, _ := LoadMNIST(dir, 2, 1)
	if sub.Len() != 2 {
		t.Fatalf("subset len %d", sub.Len())
	}
}

func TestLoadMNISTGzip(t *testing.T) {
	dir := t.TempDir()
	gz := func(b []byte) []byte {
		var buf bytes.Buffer
		w := gzip.NewWriter(&buf)
		w.Write(b)
		w.Close()
		return buf.Bytes()
	}
	images := writeIDX([]int{1, 2, 2}, []byte{10, 20, 30, 40})
	lbl := writeIDX([]int{1}, []byte{7})
	os.WriteFile(filepath.Join(dir, "train-images-idx3-ubyte.gz"), gz(images), 0o644)
	os.WriteFile(filepath.Join(dir, "train-labels-idx1-ubyte.gz"), gz(lbl), 0o644)
	src, real := LoadMNIST(dir, 0, 1)
	if !real {
		t.Fatal("gzip files not detected")
	}
	out := make([]float32, 4)
	if lab := src.Read(0, out); lab != 7 {
		t.Fatalf("label %d", lab)
	}
}

func TestLoadMNISTFallsBackToSynthetic(t *testing.T) {
	src, real := LoadMNIST(t.TempDir(), 42, 5)
	if real {
		t.Fatal("claimed real data in empty dir")
	}
	if src.Len() != 42 {
		t.Fatalf("synthetic len %d", src.Len())
	}
}

func TestCIFARBinaryRoundTrip(t *testing.T) {
	// Two records.
	var buf bytes.Buffer
	rec := make([]byte, cifarRecordLen)
	rec[0] = 3
	rec[1] = 255
	buf.Write(rec)
	rec[0] = 9
	rec[1] = 128
	buf.Write(rec)
	ds := NewInMemory([]int{3, 32, 32}, 10)
	if err := ReadCIFAR10Binary(bytes.NewReader(buf.Bytes()), ds); err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 2 {
		t.Fatalf("len %d", ds.Len())
	}
	out := make([]float32, 3*32*32)
	if lab := ds.Read(0, out); lab != 3 || out[0] != 255.0/256.0 {
		t.Fatalf("record 0: lab=%d px=%v", lab, out[0])
	}
	if lab := ds.Read(1, out); lab != 9 {
		t.Fatalf("record 1: lab=%d", lab)
	}
}

func TestCIFARBinaryTruncated(t *testing.T) {
	ds := NewInMemory([]int{3, 32, 32}, 10)
	if err := ReadCIFAR10Binary(bytes.NewReader(make([]byte, 100)), ds); err == nil {
		t.Fatal("truncated record accepted")
	}
}

func TestLoadCIFAR10AutoDetect(t *testing.T) {
	dir := t.TempDir()
	sub := filepath.Join(dir, "cifar-10-batches-bin")
	os.MkdirAll(sub, 0o755)
	rec := make([]byte, cifarRecordLen)
	rec[0] = 5
	os.WriteFile(filepath.Join(sub, "data_batch_1.bin"), rec, 0o644)
	src, real := LoadCIFAR10(dir, 0, 1)
	if !real || src.Len() != 1 {
		t.Fatalf("detect failed: real=%v len=%d", real, src.Len())
	}
	// Fallback.
	syn, real2 := LoadCIFAR10(t.TempDir(), 13, 1)
	if real2 || syn.Len() != 13 {
		t.Fatal("fallback failed")
	}
}
