module coarsegrain

go 1.22
