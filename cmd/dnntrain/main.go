// Command dnntrain trains a network defined in a Caffe-style prototxt file
// (or one of the built-in zoo networks) under a chosen execution engine:
//
//	dnntrain -model configs/lenet.prototxt -solver configs/lenet_solver.prototxt \
//	         -engine coarse -workers 8 -iters 500
//	dnntrain -zoo cifar10-full -engine sequential -iters 100
//
// Data comes from real MNIST/CIFAR files under -data when present, and
// from the deterministic synthetic generators otherwise.
//
// With -trace out.json the whole run is recorded by the span tracer
// (internal/trace) and exported as Chrome trace-event JSON — load it in
// chrome://tracing or https://ui.perfetto.dev to see every layer, phase,
// schedule band and worker rank on a timeline (see OBSERVABILITY.md):
//
//	dnntrain -zoo lenet -engine coarse -workers 8 -iters 50 -trace out.json
//
// Fault tolerance (see ROBUSTNESS.md): -snapshot-every writes crash-safe
// checkpoints into -snapshot-dir with a keep-last-K retention policy,
// -resume accepts either a snapshot file or a checkpoint directory (the
// newest *valid* checkpoint is auto-discovered, falling back past corrupt
// or truncated files), -guard-policy arms the training health monitor
// (NaN/Inf and gradient-norm guardrails with halt / skip / rollback
// recovery), and SIGINT checkpoints before exiting. The -inject-* flags
// drive the deterministic fault-injection harness for drills:
//
//	dnntrain -zoo lenet -iters 200 -snapshot-every 50 -snapshot-dir ckpt \
//	         -guard-policy rollback
//	dnntrain -zoo lenet -resume ckpt -iters 100
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"coarsegrain/internal/core"
	"coarsegrain/internal/data"
	"coarsegrain/internal/faultinject"
	"coarsegrain/internal/guard"
	"coarsegrain/internal/layers"
	"coarsegrain/internal/net"
	"coarsegrain/internal/par"
	"coarsegrain/internal/prototxt"
	"coarsegrain/internal/snapshot"
	"coarsegrain/internal/solver"
	"coarsegrain/internal/trace"
	"coarsegrain/internal/zoo"
)

func main() {
	var (
		model    = flag.String("model", "", "network prototxt file")
		solverP  = flag.String("solver", "", "solver prototxt file")
		zooName  = flag.String("zoo", "", "built-in network instead of -model: lenet | cifar10-full")
		engine   = flag.String("engine", "coarse", "execution engine: sequential | coarse | fine | tuned")
		workers  = flag.Int("workers", 4, "worker count for parallel engines")
		iters    = flag.Int("iters", 200, "training iterations")
		display  = flag.Int("display", 20, "print loss every N iterations")
		batch    = flag.Int("batch", 0, "override batch size")
		samples  = flag.Int("samples", 2048, "synthetic dataset size")
		seed     = flag.Uint64("seed", 1, "seed")
		dataDir  = flag.String("data", "", "directory with real dataset files")
		datasetF = flag.String("dataset", "", "force dataset: mnist | cifar (default inferred)")
		snapPath = flag.String("snapshot", "", "write a solver snapshot here when training ends")
		resume   = flag.String("resume", "", "resume from a snapshot file, or from the newest valid checkpoint in a directory")
		tracePth = flag.String("trace", "", "write a Chrome trace-event JSON (chrome://tracing / Perfetto) of the run here")

		snapEvery = flag.Int("snapshot-every", 0, "write a checkpoint to -snapshot-dir every N iterations (0 = off)")
		snapDir   = flag.String("snapshot-dir", "", "checkpoint directory for -snapshot-every and guard rollbacks")
		snapKeep  = flag.Int("snapshot-keep", 3, "retain only the newest K checkpoints (0 = keep all)")

		guardPol     = flag.String("guard-policy", "off", "training health monitor: off | halt | skip | rollback")
		guardNorm    = flag.Float64("guard-max-norm", 0, "fault when the gradient L2 norm exceeds this (0 = NaN/Inf checks only)")
		guardBackoff = flag.Float64("guard-lr-backoff", 0.5, "learning-rate multiplier applied on each guard rollback")
		guardEvery   = flag.Int("guard-every", 1, "run the guard scan every N iterations")

		injectSeed    = flag.Uint64("inject-seed", 1, "fault-injection seed (deterministic drills)")
		injectNaN     = flag.Int("inject-grad-nan", -1, "fault drill: poison one gradient value with NaN at this iteration")
		injectCorrupt = flag.Bool("inject-corrupt-resume", false, "fault drill: corrupt the newest checkpoint before resuming")
	)
	flag.Parse()

	// Pick the dataset: explicit flag, else infer from the model name.
	dataset := *datasetF
	if dataset == "" {
		ref := *zooName + *model
		if strings.Contains(ref, "cifar") {
			dataset = "cifar"
		} else {
			dataset = "mnist"
		}
	}
	var src layers.Source
	var real bool
	if dataset == "cifar" {
		src, real = data.LoadCIFAR10(*dataDir, *samples, *seed)
	} else {
		src, real = data.LoadMNIST(*dataDir, *samples, *seed)
	}
	if real {
		fmt.Printf("dataset: real %s (%d samples)\n", dataset, src.Len())
	} else {
		fmt.Printf("dataset: synthetic %s (%d samples)\n", dataset, src.Len())
	}

	var specs []net.LayerSpec
	var err error
	switch {
	case *zooName != "":
		specs, err = zoo.Build(*zooName, src, zoo.Options{BatchSize: *batch, Seed: *seed, Accuracy: true})
	case *model != "":
		raw, rerr := os.ReadFile(*model)
		if rerr != nil {
			fatal(rerr)
		}
		specs, err = prototxt.ParseNet(string(raw), prototxt.BuildOptions{
			Source: src, Seed: *seed, BatchOverride: *batch,
		})
	default:
		fatal(fmt.Errorf("need -model or -zoo"))
	}
	if err != nil {
		fatal(err)
	}

	eng, err := engineByName(*engine, *workers)
	if err != nil {
		fatal(err)
	}
	defer eng.Close()

	n, err := net.New(specs, eng)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("network (%d layers, engine %s/%d workers):\n%s",
		len(specs), eng.Name(), eng.Workers(), n)

	cfg := zoo.LeNetSolver()
	if dataset == "cifar" {
		cfg = zoo.CIFARFullSolver()
	}
	if *solverP != "" {
		raw, rerr := os.ReadFile(*solverP)
		if rerr != nil {
			fatal(rerr)
		}
		if cfg, err = prototxt.ParseSolver(string(raw)); err != nil {
			fatal(err)
		}
	}
	s, err := solver.New(cfg, n)
	if err != nil {
		fatal(err)
	}
	inj := faultinject.New(*injectSeed)
	if *resume != "" {
		st, err := os.Stat(*resume)
		if err != nil {
			fatal(err)
		}
		if st.IsDir() {
			if *injectCorrupt {
				cks, err := snapshot.Checkpoints(*resume)
				if err != nil || len(cks) == 0 {
					fatal(fmt.Errorf("inject-corrupt-resume: no checkpoints in %s", *resume))
				}
				newest := cks[len(cks)-1]
				off, err := inj.CorruptFile(newest)
				if err != nil {
					fatal(err)
				}
				fmt.Printf("fault injected: flipped byte %d of %s\n", off, newest)
			}
			path, skipped, err := snapshot.LoadLatestValid(*resume, s)
			for _, sk := range skipped {
				fmt.Printf("checkpoint %s invalid, falling back\n", sk)
			}
			if err != nil {
				fatal(err)
			}
			fmt.Printf("resumed from %s at iteration %d\n", path, s.Iter())
		} else {
			if err := snapshot.LoadSolverFile(*resume, s); err != nil {
				fatal(err)
			}
			fmt.Printf("resumed from %s at iteration %d\n", *resume, s.Iter())
		}
	}

	var tr *trace.Tracer
	if *tracePth != "" {
		tr = trace.New(eng.Workers())
		s.SetTracer(tr)
	}

	// Health monitor + optional fault drill, composed into one pre-update
	// hook (poison first, so the guard sees the damaged gradient).
	var mon *guard.Monitor
	var hook solver.PreUpdateHook
	if *guardPol != "off" {
		pol, err := guard.ParsePolicy(*guardPol)
		if err != nil {
			fatal(err)
		}
		mon, err = guard.New(guard.Config{
			Policy:      pol,
			MaxGradNorm: *guardNorm,
			LRBackoff:   float32(*guardBackoff),
			CheckEvery:  *guardEvery,
		}, s, par.NewPool(*workers))
		if err != nil {
			fatal(err)
		}
		defer mon.Close()
		mon.SetTracer(tr)
		if *snapDir != "" {
			dir := *snapDir
			mon.SetRestore(func(sv *solver.Solver) (string, error) {
				path, _, err := snapshot.LoadLatestValid(dir, sv)
				return path, err
			})
		}
		hook = mon.Check
	}
	if *injectNaN >= 0 {
		poison, err := inj.GradPoisoner(n, *injectNaN)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("fault armed: gradient NaN at iteration %d\n", *injectNaN)
		hook = poison.Hook(hook)
	}
	if hook != nil {
		s.SetPreUpdate(hook)
	}

	// SIGINT requests a graceful stop: finish the current chunk, write a
	// checkpoint, exit cleanly.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt)

	checkpoint := func() {
		if *snapDir == "" {
			return
		}
		path, err := snapshot.SaveCheckpoint(*snapDir, s, *snapKeep)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("checkpoint written to %s (iteration %d)\n", path, s.Iter())
	}

	fmt.Printf("training %d iterations (%s, base_lr %g)\n", *iters, cfg.Type, cfg.BaseLR)
	interrupted := false
	remaining := *iters
	for remaining > 0 && !interrupted {
		step := *display
		if step > remaining {
			step = remaining
		}
		if *snapEvery > 0 {
			if toNext := *snapEvery - s.Iter()%*snapEvery; toNext < step {
				step = toNext
			}
		}
		losses := s.Step(step)
		remaining -= step
		line := fmt.Sprintf("iter %5d  loss %.6f  lr %.6f", s.Iter(), losses[len(losses)-1], s.LearningRate())
		if acc, err := n.Output("accuracy"); err == nil {
			line += fmt.Sprintf("  batch-accuracy %.3f", acc)
		}
		fmt.Println(line)
		if mon != nil && mon.Err() != nil {
			break
		}
		if *snapEvery > 0 && s.Iter()%*snapEvery == 0 {
			checkpoint()
		}
		select {
		case <-sigc:
			fmt.Println("interrupt: checkpointing before exit")
			interrupted = true
		default:
		}
	}
	if interrupted {
		checkpoint()
	}
	if mon != nil {
		st := mon.Stats()
		fmt.Printf("guard: %d checks, %d faults (%d skipped, %d rollbacks, %d halts)\n",
			st.Checks, st.Faults, st.Skips, st.Rollbacks, st.Halts)
	}
	if *snapPath != "" {
		if err := snapshot.SaveSolverFile(*snapPath, s); err != nil {
			fatal(err)
		}
		fmt.Printf("snapshot written to %s (iteration %d)\n", *snapPath, s.Iter())
	}
	if tr.Enabled() {
		if err := tr.WriteChromeTraceFile(*tracePth); err != nil {
			fatal(err)
		}
		fmt.Printf("trace: %d spans (%d dropped) written to %s — open in chrome://tracing or https://ui.perfetto.dev\n",
			tr.Len(), tr.Dropped(), *tracePth)
	}
	if mon != nil && mon.Err() != nil {
		fatal(mon.Err())
	}
}

func engineByName(name string, workers int) (core.Engine, error) {
	switch name {
	case "sequential", "seq":
		return core.NewSequential(), nil
	case "coarse":
		return core.NewCoarse(workers), nil
	case "fine":
		return core.NewFine(workers), nil
	case "tuned":
		return core.NewTuned(workers), nil
	default:
		return nil, fmt.Errorf("unknown engine %q (sequential|coarse|fine|tuned)", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dnntrain:", err)
	os.Exit(1)
}
