// Command dnntrain trains a network defined in a Caffe-style prototxt file
// (or one of the built-in zoo networks) under a chosen execution engine:
//
//	dnntrain -model configs/lenet.prototxt -solver configs/lenet_solver.prototxt \
//	         -engine coarse -workers 8 -iters 500
//	dnntrain -zoo cifar10-full -engine sequential -iters 100
//
// Data comes from real MNIST/CIFAR files under -data when present, and
// from the deterministic synthetic generators otherwise.
//
// With -trace out.json the whole run is recorded by the span tracer
// (internal/trace) and exported as Chrome trace-event JSON — load it in
// chrome://tracing or https://ui.perfetto.dev to see every layer, phase,
// schedule band and worker rank on a timeline (see OBSERVABILITY.md):
//
//	dnntrain -zoo lenet -engine coarse -workers 8 -iters 50 -trace out.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"coarsegrain/internal/core"
	"coarsegrain/internal/data"
	"coarsegrain/internal/layers"
	"coarsegrain/internal/net"
	"coarsegrain/internal/prototxt"
	"coarsegrain/internal/snapshot"
	"coarsegrain/internal/solver"
	"coarsegrain/internal/trace"
	"coarsegrain/internal/zoo"
)

func main() {
	var (
		model    = flag.String("model", "", "network prototxt file")
		solverP  = flag.String("solver", "", "solver prototxt file")
		zooName  = flag.String("zoo", "", "built-in network instead of -model: lenet | cifar10-full")
		engine   = flag.String("engine", "coarse", "execution engine: sequential | coarse | fine | tuned")
		workers  = flag.Int("workers", 4, "worker count for parallel engines")
		iters    = flag.Int("iters", 200, "training iterations")
		display  = flag.Int("display", 20, "print loss every N iterations")
		batch    = flag.Int("batch", 0, "override batch size")
		samples  = flag.Int("samples", 2048, "synthetic dataset size")
		seed     = flag.Uint64("seed", 1, "seed")
		dataDir  = flag.String("data", "", "directory with real dataset files")
		datasetF = flag.String("dataset", "", "force dataset: mnist | cifar (default inferred)")
		snapPath = flag.String("snapshot", "", "write a solver snapshot here when training ends")
		resume   = flag.String("resume", "", "resume training from a solver snapshot")
		tracePth = flag.String("trace", "", "write a Chrome trace-event JSON (chrome://tracing / Perfetto) of the run here")
	)
	flag.Parse()

	// Pick the dataset: explicit flag, else infer from the model name.
	dataset := *datasetF
	if dataset == "" {
		ref := *zooName + *model
		if strings.Contains(ref, "cifar") {
			dataset = "cifar"
		} else {
			dataset = "mnist"
		}
	}
	var src layers.Source
	var real bool
	if dataset == "cifar" {
		src, real = data.LoadCIFAR10(*dataDir, *samples, *seed)
	} else {
		src, real = data.LoadMNIST(*dataDir, *samples, *seed)
	}
	if real {
		fmt.Printf("dataset: real %s (%d samples)\n", dataset, src.Len())
	} else {
		fmt.Printf("dataset: synthetic %s (%d samples)\n", dataset, src.Len())
	}

	var specs []net.LayerSpec
	var err error
	switch {
	case *zooName != "":
		specs, err = zoo.Build(*zooName, src, zoo.Options{BatchSize: *batch, Seed: *seed, Accuracy: true})
	case *model != "":
		raw, rerr := os.ReadFile(*model)
		if rerr != nil {
			fatal(rerr)
		}
		specs, err = prototxt.ParseNet(string(raw), prototxt.BuildOptions{
			Source: src, Seed: *seed, BatchOverride: *batch,
		})
	default:
		fatal(fmt.Errorf("need -model or -zoo"))
	}
	if err != nil {
		fatal(err)
	}

	eng, err := engineByName(*engine, *workers)
	if err != nil {
		fatal(err)
	}
	defer eng.Close()

	n, err := net.New(specs, eng)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("network (%d layers, engine %s/%d workers):\n%s",
		len(specs), eng.Name(), eng.Workers(), n)

	cfg := zoo.LeNetSolver()
	if dataset == "cifar" {
		cfg = zoo.CIFARFullSolver()
	}
	if *solverP != "" {
		raw, rerr := os.ReadFile(*solverP)
		if rerr != nil {
			fatal(rerr)
		}
		if cfg, err = prototxt.ParseSolver(string(raw)); err != nil {
			fatal(err)
		}
	}
	s, err := solver.New(cfg, n)
	if err != nil {
		fatal(err)
	}
	if *resume != "" {
		if err := snapshot.LoadSolverFile(*resume, s); err != nil {
			fatal(err)
		}
		fmt.Printf("resumed from %s at iteration %d\n", *resume, s.Iter())
	}

	var tr *trace.Tracer
	if *tracePth != "" {
		tr = trace.New(eng.Workers())
		s.SetTracer(tr)
	}

	fmt.Printf("training %d iterations (%s, base_lr %g)\n", *iters, cfg.Type, cfg.BaseLR)
	remaining := *iters
	for remaining > 0 {
		step := *display
		if step > remaining {
			step = remaining
		}
		losses := s.Step(step)
		remaining -= step
		line := fmt.Sprintf("iter %5d  loss %.6f  lr %.6f", s.Iter(), losses[len(losses)-1], s.LearningRate())
		if acc, err := n.Output("accuracy"); err == nil {
			line += fmt.Sprintf("  batch-accuracy %.3f", acc)
		}
		fmt.Println(line)
	}
	if *snapPath != "" {
		if err := snapshot.SaveSolverFile(*snapPath, s); err != nil {
			fatal(err)
		}
		fmt.Printf("snapshot written to %s (iteration %d)\n", *snapPath, s.Iter())
	}
	if tr.Enabled() {
		if err := tr.WriteChromeTraceFile(*tracePth); err != nil {
			fatal(err)
		}
		fmt.Printf("trace: %d spans (%d dropped) written to %s — open in chrome://tracing or https://ui.perfetto.dev\n",
			tr.Len(), tr.Dropped(), *tracePth)
	}
}

func engineByName(name string, workers int) (core.Engine, error) {
	switch name {
	case "sequential", "seq":
		return core.NewSequential(), nil
	case "coarse":
		return core.NewCoarse(workers), nil
	case "fine":
		return core.NewFine(workers), nil
	case "tuned":
		return core.NewTuned(workers), nil
	default:
		return nil, fmt.Errorf("unknown engine %q (sequential|coarse|fine|tuned)", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dnntrain:", err)
	os.Exit(1)
}
