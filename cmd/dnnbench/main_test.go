package main

import "testing"

func TestParseThreads(t *testing.T) {
	got, err := parseThreads("1, 2,4 ,16")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 4, 16}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestParseThreadsErrors(t *testing.T) {
	for _, bad := range []string{"", "a", "0", "-2", "1,,x"} {
		if _, err := parseThreads(bad); err == nil {
			t.Fatalf("parseThreads(%q) accepted", bad)
		}
	}
}
