// Command dnnbench regenerates the tables and figures of the paper's
// evaluation section (see DESIGN.md §3 for the experiment index):
//
//	dnnbench -figure 4        # MNIST per-layer times        (Figure 4)
//	dnnbench -figure 5        # MNIST per-layer scalability  (Figure 5)
//	dnnbench -figure 6        # MNIST overall + GPU          (Figure 6)
//	dnnbench -figure 7        # CIFAR per-layer times        (Figure 7)
//	dnnbench -figure 8        # CIFAR per-layer scalability  (Figure 8)
//	dnnbench -figure 9        # CIFAR overall + GPU          (Figure 9)
//	dnnbench -figure gemm     # GEMM kernel: reference vs blocked
//	dnnbench -figure mem      # §3.2.1 privatization memory
//	dnnbench -figure conv     # convergence invariance
//	dnnbench -figure ablation # reduction & coalescing ablations
//	dnnbench -figure comm     # gradient exchange: topology x wire bytes/step
//	dnnbench -figure all      # everything
//
// Serial per-layer costs are measured on this host; multi-thread numbers
// are modeled by the calibrated machine model (add -measure on a real
// multicore host for wall-clock numbers as well).
//
// With -trace out.json, dnnbench instead runs a short traced training
// capture (coarse engine, highest -threads count) and writes Chrome
// trace-event JSON plus the derived per-layer and worker-utilization
// tables — see OBSERVABILITY.md:
//
//	dnnbench -trace out.json -net mnist -threads 8 -iters 10
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"coarsegrain/internal/bench"
)

func main() {
	var (
		figure  = flag.String("figure", "all", "figure to reproduce: 4-9, gemm, mem, conv, ablation, engines, comm, all")
		netName = flag.String("net", "", "override benchmark network (mnist|cifar)")
		batch   = flag.Int("batch", 0, "override batch size (default: paper's 64/100)")
		samples = flag.Int("samples", 0, "synthetic dataset size (default 4*batch)")
		iters   = flag.Int("iters", 3, "timed iterations per measurement")
		warmup  = flag.Int("warmup", 1, "warm-up iterations")
		threads = flag.String("threads", "1,2,4,8,12,16", "comma-separated worker counts")
		seed    = flag.Uint64("seed", 1, "seed for weights and synthetic data")
		dataDir = flag.String("data", "", "directory with real MNIST/CIFAR files (synthetic otherwise)")
		measure = flag.Bool("measure", false, "also measure real parallel wall-clock runs")
		convIt  = flag.Int("conv-iters", 20, "training iterations for the convergence experiment")
		trcPath = flag.String("trace", "", "capture mode: write a Chrome trace of a short training run here instead of running figures")
	)
	flag.Parse()

	ths, err := parseThreads(*threads)
	if err != nil {
		fatal(err)
	}
	baseOpt := func(defNet string) bench.Options {
		n := defNet
		if *netName != "" {
			n = *netName
		}
		return bench.Options{
			Net: n, Batch: *batch, Samples: *samples,
			Iterations: *iters, Warmup: *warmup,
			Threads: ths, Seed: *seed, DataDir: *dataDir, Measure: *measure,
		}
	}

	if *trcPath != "" {
		res, err := bench.TraceCapture(baseOpt("mnist"), *trcPath)
		if err != nil {
			fatal(err)
		}
		res.Render(os.Stdout)
		return
	}

	run := func(fig string) error {
		switch fig {
		case "4":
			res, err := bench.PerLayerTimes(baseOpt("mnist"))
			if err != nil {
				return err
			}
			fmt.Println("### Figure 4 ###")
			res.Render(os.Stdout)
		case "5":
			res, err := bench.PerLayerScalability(baseOpt("mnist"))
			if err != nil {
				return err
			}
			fmt.Println("### Figure 5 ###")
			res.Render(os.Stdout)
		case "6":
			res, err := bench.Overall(baseOpt("mnist"))
			if err != nil {
				return err
			}
			fmt.Println("### Figure 6 ###")
			res.Render(os.Stdout)
		case "7":
			res, err := bench.PerLayerTimes(baseOpt("cifar"))
			if err != nil {
				return err
			}
			fmt.Println("### Figure 7 ###")
			res.Render(os.Stdout)
		case "8":
			res, err := bench.PerLayerScalability(baseOpt("cifar"))
			if err != nil {
				return err
			}
			fmt.Println("### Figure 8 ###")
			res.Render(os.Stdout)
		case "9":
			res, err := bench.Overall(baseOpt("cifar"))
			if err != nil {
				return err
			}
			fmt.Println("### Figure 9 ###")
			res.Render(os.Stdout)
		case "gemm":
			for _, n := range []string{"mnist", "cifar"} {
				if *netName != "" && n != *netName {
					continue
				}
				o := baseOpt(n)
				o.Net = n
				res, err := bench.GemmKernels(o)
				if err != nil {
					return err
				}
				fmt.Println("### GEMM kernel comparison ###")
				res.Render(os.Stdout)
			}
		case "mem":
			for _, n := range []string{"mnist", "cifar"} {
				if *netName != "" && n != *netName {
					continue
				}
				o := baseOpt(n)
				o.Net = n
				res, err := bench.Memory(o)
				if err != nil {
					return err
				}
				fmt.Println("### Memory overhead (paper §3.2.1) ###")
				res.Render(os.Stdout)
			}
		case "conv":
			res, err := bench.Convergence(baseOpt("mnist"), *convIt)
			if err != nil {
				return err
			}
			fmt.Println("### Convergence invariance ###")
			res.Render(os.Stdout)
		case "ablation":
			res, err := bench.Ablation(baseOpt("mnist"))
			if err != nil {
				return err
			}
			fmt.Println("### Ablations ###")
			res.Render(os.Stdout)
		case "comm":
			res, err := bench.Comm(baseOpt("mnist"))
			if err != nil {
				return err
			}
			fmt.Println("### Gradient exchange: bytes on wire ###")
			res.Render(os.Stdout)
		case "engines":
			res, err := bench.EngineComparison(baseOpt("mnist"))
			if err != nil {
				return err
			}
			fmt.Println("### Measured engine comparison ###")
			res.Render(os.Stdout)
		default:
			return fmt.Errorf("unknown figure %q", fig)
		}
		fmt.Println()
		return nil
	}

	figs := []string{*figure}
	if *figure == "all" {
		figs = []string{"4", "5", "6", "7", "8", "9", "gemm", "mem", "conv", "ablation", "engines", "comm"}
	}
	for _, f := range figs {
		if err := run(f); err != nil {
			fatal(err)
		}
	}
}

func parseThreads(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad thread count %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no thread counts given")
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dnnbench:", err)
	os.Exit(1)
}
