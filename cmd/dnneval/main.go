// Command dnneval evaluates a trained model snapshot on a test stream:
//
//	dnntrain -zoo lenet -iters 500 -snapshot /tmp/lenet.cgdnn
//	dnneval  -zoo lenet -snapshot /tmp/lenet.cgdnn -batches 20
//
// It loads the parameters saved by dnntrain (solver snapshots are
// accepted too — the extra state is ignored), runs the requested number
// of forward-only batches in test mode, and reports mean loss and
// accuracy.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"coarsegrain/internal/core"
	"coarsegrain/internal/data"
	"coarsegrain/internal/layers"
	"coarsegrain/internal/metrics"
	"coarsegrain/internal/net"
	"coarsegrain/internal/prototxt"
	"coarsegrain/internal/snapshot"
	"coarsegrain/internal/solver"
	"coarsegrain/internal/zoo"
)

func main() {
	var (
		model    = flag.String("model", "", "network prototxt file")
		zooName  = flag.String("zoo", "", "built-in network: lenet | cifar10-full")
		snapPath = flag.String("snapshot", "", "model or solver snapshot to evaluate (required)")
		batches  = flag.Int("batches", 16, "test batches to average over")
		batch    = flag.Int("batch", 0, "override batch size")
		samples  = flag.Int("samples", 2048, "synthetic dataset size")
		seed     = flag.Uint64("seed", 2, "seed for the synthetic test stream")
		workers  = flag.Int("workers", 1, "coarse workers for the forward passes")
		dataDir  = flag.String("data", "", "directory with real dataset files")
		scores   = flag.String("scores", "", "score blob for the confusion matrix (default: ip2 for lenet, ip1 for cifar)")
	)
	flag.Parse()
	if *snapPath == "" {
		fatal(fmt.Errorf("need -snapshot"))
	}

	ref := *zooName + *model
	var src layers.Source
	if strings.Contains(ref, "cifar") {
		src, _ = data.LoadCIFAR10(*dataDir, *samples, *seed)
	} else {
		src, _ = data.LoadMNIST(*dataDir, *samples, *seed)
	}

	var specs []net.LayerSpec
	var err error
	switch {
	case *zooName != "":
		specs, err = zoo.Build(*zooName, src, zoo.Options{BatchSize: *batch, Seed: *seed, Accuracy: true})
	case *model != "":
		raw, rerr := os.ReadFile(*model)
		if rerr != nil {
			fatal(rerr)
		}
		specs, err = prototxt.ParseNet(string(raw), prototxt.BuildOptions{
			Source: src, Seed: *seed, BatchOverride: *batch,
		})
	default:
		fatal(fmt.Errorf("need -model or -zoo"))
	}
	if err != nil {
		fatal(err)
	}

	eng := core.NewCoarse(*workers)
	defer eng.Close()
	n, err := net.New(specs, eng)
	if err != nil {
		fatal(err)
	}
	if err := snapshot.LoadNetFile(*snapPath, n); err != nil {
		fatal(err)
	}
	fmt.Printf("loaded %s into a %d-layer net; evaluating %d batches\n",
		*snapPath, len(specs), *batches)

	outputs := []string{"loss"}
	if _, err := n.Output("accuracy"); err == nil {
		outputs = append(outputs, "accuracy")
	}
	res, err := solver.Evaluate(n, outputs, *batches)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("mean loss: %.6f\n", res["loss"])
	if acc, ok := res["accuracy"]; ok {
		fmt.Printf("mean accuracy: %.4f\n", acc)
	}

	// Confusion matrix over the score blob, when one can be named.
	sb := *scores
	if sb == "" {
		switch {
		case strings.Contains(*zooName, "lenet") || strings.Contains(*zooName, "mnist"):
			sb = "ip2"
		case strings.Contains(*zooName, "cifar"):
			sb = "ip1"
		}
	}
	if sb != "" {
		cm, err := metrics.Collect(n, sb, "label", *batches)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\nconfusion matrix (%s vs label):\n%s", sb, cm)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dnneval:", err)
	os.Exit(1)
}
