// Command dnnload is the load generator for dnnserve: it sweeps client
// concurrency levels against a running server and reports throughput
// and latency percentiles per level — the measurement behind the
// batching-win numbers in SERVING.md.
//
//	dnnserve -zoo lenet -snapshot model.cgdnn -addr :0 -addr-file /tmp/addr
//	dnnload  -addr "$(cat /tmp/addr)" -concurrency 1,8,32 -duration 3s
//
// Each client goroutine issues single-sample requests back to back over
// a keep-alive connection; the server's dynamic batcher supplies all
// cross-client coalescing, so the sweep directly shows how batch
// formation scales with offered concurrency. -probe sends one JSON
// request and exits 0 on a valid response (used by the CI smoke test).
package main

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

type serverInfo struct {
	Model     string `json:"model"`
	SampleLen int    `json:"sample_len"`
	Classes   int    `json:"classes"`
	MaxBatch  int    `json:"max_batch"`
	Replicas  int    `json:"replicas"`
}

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8080", "dnnserve address (host:port)")
		levels   = flag.String("concurrency", "1,2,4,8,16,32", "comma-separated client counts to sweep")
		duration = flag.Duration("duration", 3*time.Second, "measured window per concurrency level")
		warmup   = flag.Duration("warmup", 500*time.Millisecond, "unmeasured warm-up per level")
		useJSON  = flag.Bool("json", false, "use the /v1/predict JSON endpoint instead of /v1/tensor")
		probe    = flag.Bool("probe", false, "send one JSON request, validate the response, exit")
	)
	flag.Parse()
	base := "http://" + *addr

	info, err := fetchInfo(base)
	if err != nil {
		fatal(err)
	}
	if *probe {
		if err := runProbe(base, info); err != nil {
			fatal(err)
		}
		return
	}

	concs, err := parseLevels(*levels)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("dnnload: %s on %s — sample_len %d, classes %d, max_batch %d, replicas %d\n",
		info.Model, *addr, info.SampleLen, info.Classes, info.MaxBatch, info.Replicas)
	endpoint := "/v1/tensor"
	if *useJSON {
		endpoint = "/v1/predict"
	}
	fmt.Printf("dnnload: endpoint %s, %v per level after %v warm-up\n\n", endpoint, *duration, *warmup)
	fmt.Printf("%5s %9s %7s %12s %9s %9s %9s\n", "conc", "requests", "429s", "req/s", "p50(ms)", "p95(ms)", "p99(ms)")
	for _, c := range concs {
		res := runLevel(base, info, c, *duration, *warmup, *useJSON)
		fmt.Printf("%5d %9d %7d %12.1f %9.2f %9.2f %9.2f\n",
			c, res.requests, res.rejected, res.throughput,
			ms(res.p50), ms(res.p95), ms(res.p99))
	}
}

// sweepResult aggregates one concurrency level.
type sweepResult struct {
	requests, rejected int64
	throughput         float64
	p50, p95, p99      time.Duration
}

// worker state: per-client latency log, merged after the level ends.
type worker struct {
	lats     []time.Duration
	rejected int64
}

// runLevel drives c clients for warmup+duration and aggregates the
// measured window.
func runLevel(base string, info serverInfo, c int, duration, warmup time.Duration, useJSON bool) sweepResult {
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        c,
		MaxIdleConnsPerHost: c,
	}}
	defer client.CloseIdleConnections()

	bodies := sampleBodies(info, 16, useJSON)
	var start, stop time.Time
	var mu sync.Mutex
	workers := make([]*worker, c)
	var wg sync.WaitGroup
	begin := make(chan struct{})
	done := make(chan struct{})
	for i := 0; i < c; i++ {
		w := &worker{}
		workers[i] = w
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			<-begin
			for n := 0; ; n++ {
				select {
				case <-done:
					return
				default:
				}
				body := bodies[(id+n)%len(bodies)]
				t0 := time.Now()
				status, err := post(client, base, body, useJSON)
				lat := time.Since(t0)
				if err != nil {
					continue // connection hiccup; keep offering load
				}
				mu.Lock()
				inWindow := !start.IsZero() && t0.After(start) && time.Now().Before(stop)
				mu.Unlock()
				switch {
				case status == http.StatusTooManyRequests:
					if inWindow {
						w.rejected++
					}
					time.Sleep(time.Millisecond) // back off as Retry-After suggests, scaled down
				case status == http.StatusOK && inWindow:
					w.lats = append(w.lats, lat)
				}
			}
		}(i)
	}
	close(begin)
	time.Sleep(warmup)
	mu.Lock()
	start = time.Now()
	stop = start.Add(duration)
	mu.Unlock()
	time.Sleep(duration)
	close(done)
	wg.Wait()

	var all []time.Duration
	var res sweepResult
	for _, w := range workers {
		all = append(all, w.lats...)
		res.rejected += w.rejected
	}
	res.requests = int64(len(all))
	res.throughput = float64(len(all)) / duration.Seconds()
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	res.p50 = percentile(all, 50)
	res.p95 = percentile(all, 95)
	res.p99 = percentile(all, 99)
	return res
}

// sampleBodies pre-encodes n distinct single-sample request bodies so
// the measurement loop does no marshalling.
func sampleBodies(info serverInfo, n int, useJSON bool) [][]byte {
	bodies := make([][]byte, n)
	for i := range bodies {
		sample := make([]float32, info.SampleLen)
		for j := range sample {
			sample[j] = float32((i*31+j)%17) / 17
		}
		if useJSON {
			raw, err := json.Marshal(map[string]any{"input": sample})
			if err != nil {
				fatal(err)
			}
			bodies[i] = raw
		} else {
			raw := make([]byte, 4*len(sample))
			for j, v := range sample {
				binary.LittleEndian.PutUint32(raw[4*j:], math.Float32bits(v))
			}
			bodies[i] = raw
		}
	}
	return bodies
}

func post(client *http.Client, base string, body []byte, useJSON bool) (int, error) {
	url, ctype := base+"/v1/tensor", "application/octet-stream"
	if useJSON {
		url, ctype = base+"/v1/predict", "application/json"
	}
	resp, err := client.Post(url, ctype, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, nil
}

func fetchInfo(base string) (serverInfo, error) {
	var info serverInfo
	resp, err := http.Get(base + "/v1/info")
	if err != nil {
		return info, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return info, fmt.Errorf("GET /v1/info: status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return info, err
	}
	if info.SampleLen <= 0 || info.Classes <= 0 {
		return info, fmt.Errorf("GET /v1/info: implausible model (sample_len %d, classes %d)", info.SampleLen, info.Classes)
	}
	return info, nil
}

// runProbe is the CI smoke check: one JSON prediction must come back
// 200 with a plausible score row.
func runProbe(base string, info serverInfo) error {
	sample := make([]float32, info.SampleLen)
	for j := range sample {
		sample[j] = float32(j%17) / 17
	}
	raw, err := json.Marshal(map[string]any{"input": sample})
	if err != nil {
		return err
	}
	resp, err := http.Post(base+"/v1/predict", "application/json", bytes.NewReader(raw))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("probe: status %d", resp.StatusCode)
	}
	var out struct {
		Scores [][]float32 `json:"scores"`
		Argmax []int       `json:"argmax"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return fmt.Errorf("probe: bad response: %w", err)
	}
	if len(out.Scores) != 1 || len(out.Scores[0]) != info.Classes || len(out.Argmax) != 1 {
		return fmt.Errorf("probe: response shape: %d score rows, %d argmax", len(out.Scores), len(out.Argmax))
	}
	for _, v := range out.Scores[0] {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			return fmt.Errorf("probe: non-finite score %g", v)
		}
	}
	fmt.Printf("probe ok: %d classes, argmax %d, score[argmax] %.4f\n",
		info.Classes, out.Argmax[0], out.Scores[0][out.Argmax[0]])
	return nil
}

func parseLevels(s string) ([]int, error) {
	var out []int
	for _, p := range strings.Split(s, ",") {
		c, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || c <= 0 {
			return nil, fmt.Errorf("bad -concurrency %q: want positive ints like 1,8,32", s)
		}
		out = append(out, c)
	}
	return out, nil
}

func percentile(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := (len(sorted)-1)*p + 50
	return sorted[idx/100]
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dnnload:", err)
	os.Exit(1)
}
