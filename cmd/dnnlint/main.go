// Command dnnlint enforces the repository's determinism and parallelism
// contracts by static analysis (LINTING.md has the full catalogue):
//
//	dnnlint ./...                 # the whole module, tests included
//	dnnlint -tests=false ./...    # non-test code only
//	dnnlint -only parbody ./internal/blas
//	dnnlint -json ./...           # one JSON object per finding, per line
//	dnnlint -list                 # describe the analyzers
//
// Diagnostics print as file:line:col: analyzer: message, one per line;
// the exit status is 1 when anything is found, 2 on load or usage
// errors, 0 on a clean run. A finding can be waived at one site with
// `//dnnlint:ignore <analyzer> <justification>` on the flagged line or
// the line above.
//
// The tool is built entirely on the standard library (go/parser, go/ast,
// go/types and the stdlib source importer) — no x/tools dependency — so
// it works in the same hermetic toolchain the rest of the repository
// builds with.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"coarsegrain/internal/lint"
	"coarsegrain/internal/lint/analyzers"
)

// jsonDiag is the -json wire form of one finding.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	var (
		tests  = flag.Bool("tests", true, "also analyze in-package _test.go files")
		only   = flag.String("only", "", "comma-separated analyzer names to run (default: all)")
		src    = flag.String("src", "", "comma-separated extra source roots for import resolution (fixture testing)")
		asJSON = flag.Bool("json", false, "emit one JSON object per finding instead of plain text")
		list   = flag.Bool("list", false, "list analyzers and exit")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: dnnlint [flags] [packages]\n\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	all := analyzers.All()
	if *list {
		for _, a := range all {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	selected := all
	if *only != "" {
		byName := map[string]*lint.Analyzer{}
		for _, a := range all {
			byName[a.Name] = a
		}
		selected = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "dnnlint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			selected = append(selected, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cfg := lint.Config{Tests: *tests}
	if *src != "" {
		cfg.SrcDirs = strings.Split(*src, ",")
	}
	loader, err := lint.NewLoader(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dnnlint: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dnnlint: %v\n", err)
		os.Exit(2)
	}
	if err := lint.FirstError(pkgs); err != nil {
		fmt.Fprintf(os.Stderr, "dnnlint: packages do not type-check:\n%v\n", err)
		os.Exit(2)
	}

	diags := lint.Run(pkgs, selected)
	if *asJSON {
		// One object per line (JSON Lines): trivially consumed by jq,
		// editors and the GitHub Actions problem matcher without
		// buffering the whole run.
		enc := json.NewEncoder(os.Stdout)
		for _, d := range diags {
			if err := enc.Encode(jsonDiag{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			}); err != nil {
				fmt.Fprintf(os.Stderr, "dnnlint: %v\n", err)
				os.Exit(2)
			}
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "dnnlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
