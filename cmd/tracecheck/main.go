// Command tracecheck validates a Chrome trace-event JSON file produced by
// the span tracer (dnntrain/dnnbench/layerprof -trace) and prints a short
// summary. It exits non-zero when the file is not a well-formed trace, so
// CI can use it to smoke-test the tracing pipeline:
//
//	dnnbench -trace out.json -iters 2 && tracecheck out.json
package main

import (
	"flag"
	"fmt"
	"os"

	"coarsegrain/internal/trace"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: tracecheck <trace.json> [...]")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	bad := false
	for _, path := range flag.Args() {
		st, err := trace.ValidateChromeTraceFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracecheck: %s: %v\n", path, err)
			bad = true
			continue
		}
		fmt.Printf("%s: ok — %d events (%d spans, %d metadata), %d threads, %.1f ms wall\n",
			path, st.Events, st.Complete, st.Meta, st.Threads, st.WallUS/1000)
	}
	if bad {
		os.Exit(1)
	}
}
