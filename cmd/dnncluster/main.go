// Command dnncluster runs the distributed data-parallel trainer
// (internal/dist) in one process or several, over the transport
// abstraction of internal/transport (see DISTRIBUTED.md).
//
// Single process, k in-process replicas over the Local transport:
//
//	dnncluster -zoo lenet -replicas 4 -fanout 2 -iters 100
//
// Multi-process over TCP: start a coordinator (rank 0, owns the solver),
// then one worker per remaining rank. The coordinator publishes its
// rendezvous address via -addr-file:
//
//	dnncluster -role coordinator -replicas 2 -addr 127.0.0.1:0 \
//	           -addr-file /tmp/coord.addr -zoo lenet -iters 100 &
//	dnncluster -role worker -addr-file /tmp/coord.addr -zoo lenet -iters 100
//
// Every role builds the same seeded network over its shard of the global
// batch, so a k-rank run — local or TCP, any -fanout, even with -flaky-*
// faults injected — produces snapshots bit-identical to the
// single-process replica trainer with k replicas (the determinism
// contract tested in internal/dist). -snapshot writes the root's final
// solver state in the same format as dnntrain; -trace records PhaseComm
// spans next to compute spans (OBSERVABILITY.md).
//
// -predict runs the internal/simtime cluster model against a measured
// single-replica calibration and, for each k, compares the predicted
// iteration speedup with a measured in-process run (the EXPERIMENTS.md
// scaling study).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"coarsegrain/internal/core"
	"coarsegrain/internal/data"
	"coarsegrain/internal/dist"
	"coarsegrain/internal/faultinject"
	"coarsegrain/internal/layers"
	"coarsegrain/internal/net"
	"coarsegrain/internal/prototxt"
	"coarsegrain/internal/simtime"
	"coarsegrain/internal/snapshot"
	"coarsegrain/internal/solver"
	"coarsegrain/internal/trace"
	"coarsegrain/internal/transport"
	"coarsegrain/internal/zoo"
)

type config struct {
	role     string
	replicas int
	fanout   int
	reduce   string
	gradWire string
	iters    int
	display  int

	model   string
	zooName string
	engine  string
	workers int
	batch   int
	samples int
	seed    uint64
	dataDir string
	dataset string

	addr     string
	addrFile string

	snapPath   string
	tracePath  string
	resumePath string

	elastic      bool
	fenceDir     string
	minRanks     int
	rejoin       bool
	heartbeat    time.Duration
	peerTimeout  time.Duration
	iterDeadline time.Duration

	chaosMode  string
	chaosRank  int
	chaosIter  int
	chaosDelay time.Duration
	chaosSeed  uint64

	noOverlap  bool
	flakyDrop  float64
	flakyDup   float64
	flakyDelay float64
	flakySeed  uint64

	predict bool
}

func main() {
	var c config
	flag.StringVar(&c.role, "role", "local", "local | coordinator | worker")
	flag.IntVar(&c.replicas, "replicas", 2, "total rank count (local and coordinator roles)")
	flag.IntVar(&c.fanout, "fanout", 2, "reduction tree fan-out")
	flag.StringVar(&c.reduce, "reduce", "tree", "gradient exchange topology: tree | ring")
	flag.StringVar(&c.gradWire, "grad-wire", "f32", "gradient wire format: f32 | f16 | int8 (lossy formats use error feedback)")
	flag.IntVar(&c.iters, "iters", 100, "training iterations")
	flag.IntVar(&c.display, "display", 20, "print loss every N iterations (root only)")
	flag.StringVar(&c.model, "model", "", "network prototxt file")
	flag.StringVar(&c.zooName, "zoo", "lenet", "built-in network instead of -model: lenet | cifar10-full")
	flag.StringVar(&c.engine, "engine", "sequential", "per-rank execution engine: sequential | coarse | fine | tuned")
	flag.IntVar(&c.workers, "workers", 1, "per-rank engine worker count")
	flag.IntVar(&c.batch, "batch", 0, "global batch size (split across replicas; default 64 MNIST / 100 CIFAR)")
	flag.IntVar(&c.samples, "samples", 0, "synthetic dataset size (default: 32 global batches)")
	flag.Uint64Var(&c.seed, "seed", 1, "weight/data seed (must match across all ranks)")
	flag.StringVar(&c.dataDir, "data", "", "directory with real dataset files")
	flag.StringVar(&c.dataset, "dataset", "", "force dataset: mnist | cifar (default inferred)")
	flag.StringVar(&c.addr, "addr", "", "coordinator: listen address (default 127.0.0.1:0); worker: coordinator address")
	flag.StringVar(&c.addrFile, "addr-file", "", "coordinator: write rendezvous address here; worker: read it from here")
	flag.StringVar(&c.snapPath, "snapshot", "", "root: write the final solver snapshot here (dnntrain-compatible)")
	flag.StringVar(&c.tracePath, "trace", "", "write a Chrome trace-event JSON of this rank's run here")
	flag.StringVar(&c.resumePath, "resume", "", "resume from this solver snapshot (-iters is the absolute target iteration)")
	flag.BoolVar(&c.elastic, "elastic", false, "run under the elastic supervisor: heartbeat failure detection + checkpoint-fenced membership")
	flag.StringVar(&c.fenceDir, "fence-dir", "", "elastic: fence checkpoint directory (required on rank 0)")
	flag.IntVar(&c.minRanks, "min-ranks", 1, "elastic: abort rather than shrink the group below this many ranks")
	flag.BoolVar(&c.rejoin, "rejoin", false, "elastic: evicted ranks wait to rejoin instead of exiting")
	flag.DurationVar(&c.heartbeat, "heartbeat", 0, "elastic: coordinator ping period (default 20ms)")
	flag.DurationVar(&c.peerTimeout, "peer-timeout", 0, "elastic: silence after which a member is declared dead (default 10 heartbeats)")
	flag.DurationVar(&c.iterDeadline, "iter-deadline", 0, "elastic: per-iteration straggler deadline (0 disables)")
	flag.StringVar(&c.chaosMode, "chaos-mode", "none", "inject a cluster failure (local role): none | crash | hang | partition | straggle")
	flag.IntVar(&c.chaosRank, "chaos-rank", -1, "chaos victim rank (-1: seeded choice, never rank 0)")
	flag.IntVar(&c.chaosIter, "chaos-iter", -1, "chaos trigger iteration (-1: seeded choice)")
	flag.DurationVar(&c.chaosDelay, "chaos-delay", 0, "straggle: injected per-iteration delay (default 250ms)")
	flag.Uint64Var(&c.chaosSeed, "chaos-seed", 1, "seed for the unset -chaos-* choices")
	flag.BoolVar(&c.noOverlap, "no-overlap", false, "disable the backward-hook scatter overlap (values are identical)")
	flag.Float64Var(&c.flakyDrop, "flaky-drop", 0, "inject send drops with this probability (deterministic per -flaky-seed)")
	flag.Float64Var(&c.flakyDup, "flaky-dup", 0, "inject duplicate sends with this probability")
	flag.Float64Var(&c.flakyDelay, "flaky-delay", 0, "inject send delays with this probability")
	flag.Uint64Var(&c.flakySeed, "flaky-seed", 1, "fault-injection seed (offset by rank)")
	flag.BoolVar(&c.predict, "predict", false, "run the simtime cluster model vs measured in-process scaling, then exit")
	flag.Parse()

	if c.predict {
		if err := runPredict(c); err != nil {
			fatal(err)
		}
		return
	}

	var err error
	switch c.role {
	case "local":
		err = runLocal(c)
	case "coordinator":
		err = runCoordinator(c)
	case "worker":
		err = runWorker(c)
	default:
		err = fmt.Errorf("unknown role %q (local|coordinator|worker)", c.role)
	}
	if err != nil {
		fatal(err)
	}
}

// datasetName resolves the dataset the same way dnntrain does: explicit
// flag wins, else inferred from the model reference.
func (c config) datasetName() string {
	if c.dataset != "" {
		return c.dataset
	}
	if strings.Contains(c.zooName+c.model, "cifar") {
		return "cifar"
	}
	return "mnist"
}

func (c config) globalBatch() int {
	if c.batch > 0 {
		return c.batch
	}
	if c.datasetName() == "cifar" {
		return 100
	}
	return 64
}

func (c config) solverConfig() solver.Config {
	if c.datasetName() == "cifar" {
		return zoo.CIFARFullSolver()
	}
	return zoo.LeNetSolver()
}

// source builds the global sample stream every rank shards. The sample
// count is rounded up to a whole number of global batches so shard
// epochs align (a data.NewShard requirement).
func (c config) source() (layers.Source, error) {
	gb := c.globalBatch()
	n := c.samples
	if n <= 0 {
		n = 32 * gb
	}
	if rem := n % gb; rem != 0 {
		n += gb - rem
	}
	var src layers.Source
	var real bool
	if c.datasetName() == "cifar" {
		src, real = data.LoadCIFAR10(c.dataDir, n, c.seed)
	} else {
		src, real = data.LoadMNIST(c.dataDir, n, c.seed)
	}
	if src.Len()%gb != 0 {
		return nil, fmt.Errorf("dataset length %d not divisible by global batch %d (pick -batch or -samples accordingly)", src.Len(), gb)
	}
	kind := "synthetic"
	if real {
		kind = "real"
	}
	fmt.Printf("dataset: %s %s (%d samples, global batch %d)\n", kind, c.datasetName(), src.Len(), gb)
	return src, nil
}

// buildRankNet constructs rank r's network: the seeded architecture over
// shard r of the global batch. Identical seeds on every rank are what
// make the initial weights — and therefore the whole run — bitwise
// reproducible.
func (c config) buildRankNet(src layers.Source, r, k int) (*net.Net, core.Engine, error) {
	shard, err := data.NewShard(src, r, k, c.globalBatch())
	if err != nil {
		return nil, nil, err
	}
	var specs []net.LayerSpec
	switch {
	case c.model != "":
		raw, err := os.ReadFile(c.model)
		if err != nil {
			return nil, nil, err
		}
		specs, err = prototxt.ParseNet(string(raw), prototxt.BuildOptions{
			Source: shard, Seed: c.seed, BatchOverride: shard.LocalBatch(),
		})
		if err != nil {
			return nil, nil, err
		}
	default:
		specs, err = zoo.Build(c.zooName, shard, zoo.Options{BatchSize: shard.LocalBatch(), Seed: c.seed})
		if err != nil {
			return nil, nil, err
		}
	}
	eng, err := engineByName(c.engine, c.workers)
	if err != nil {
		return nil, nil, err
	}
	n, err := net.New(specs, eng)
	if err != nil {
		eng.Close()
		return nil, nil, err
	}
	return n, eng, nil
}

func (c config) distOptions() dist.Options {
	return dist.Options{
		Fanout:    c.fanout,
		NoOverlap: c.noOverlap,
		Topology:  c.reduce,
		GradWire:  c.gradWire,
	}
}

// wrapFlaky injects the seeded fault layer when any -flaky-* probability
// is set. Each rank gets a distinct stream (seed offset by rank) so the
// fault pattern is deterministic for the whole group.
func (c config) wrapFlaky(t transport.Transport) transport.Transport {
	if c.flakyDrop == 0 && c.flakyDup == 0 && c.flakyDelay == 0 {
		return t
	}
	return transport.NewFlaky(t, transport.FlakyConfig{
		DropProb:  float32(c.flakyDrop),
		DupProb:   float32(c.flakyDup),
		DelayProb: float32(c.flakyDelay),
	}, c.flakySeed+uint64(t.Rank()))
}

// skipBatches advances every data layer's cursor past the batches a
// resumed run already consumed, so batch numbering continues where the
// snapshot left off.
func skipBatches(n *net.Net, batches int) {
	for _, l := range n.Layers() {
		if d, ok := l.(*layers.Data); ok {
			d.Skip(batches)
		}
	}
}

// engineBag collects the engines the elastic Rebuild callback creates —
// one per membership the rank lives through — for teardown after the
// run. Rebuild can race with nothing here (the supervisor serializes
// fences), but the bag is locked anyway so the contract is local.
type engineBag struct {
	mu      sync.Mutex
	engines []core.Engine
}

func (b *engineBag) add(e core.Engine) {
	b.mu.Lock()
	b.engines = append(b.engines, e)
	b.mu.Unlock()
}

func (b *engineBag) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, e := range b.engines {
		e.Close()
	}
	b.engines = nil
}

// chaosScenario resolves the -chaos-* flags into a concrete failure
// plan: explicit -chaos-rank/-chaos-iter pin the choice, anything left
// unset is drawn from the seeded injector so a drill replays from
// -chaos-seed alone.
func (c config) chaosScenario() (*faultinject.ClusterScenario, error) {
	if c.chaosMode == "" || c.chaosMode == "none" {
		return nil, nil
	}
	var mode transport.ChaosMode
	switch c.chaosMode {
	case "crash":
		mode = transport.ChaosCrash
	case "hang":
		mode = transport.ChaosHang
	case "partition":
		mode = transport.ChaosPartition
	case "straggle":
		mode = transport.ChaosStraggle
	default:
		return nil, fmt.Errorf("unknown -chaos-mode %q (none|crash|hang|partition|straggle)", c.chaosMode)
	}
	s, err := faultinject.New(c.chaosSeed).ClusterScenario(c.replicas, c.iters, mode)
	if err != nil {
		return nil, err
	}
	if c.chaosRank >= 0 {
		if c.chaosRank == 0 {
			return nil, fmt.Errorf("-chaos-rank 0 would kill the coordinator, which owns the solver; pick a worker rank")
		}
		s.Victim = c.chaosRank
	}
	if c.chaosIter >= 0 {
		s.AtIter = c.chaosIter
	}
	s.Delay = c.chaosDelay
	return &s, nil
}

// runElasticRank drives one rank under the elastic supervisor
// (dist.RunElastic): the Rebuild callback reconstructs this rank's
// network for whatever membership each fence settles on, with the data
// cursor positioned at the fence iteration.
func runElasticRank(c config, t transport.Transport, src layers.Source) error {
	engines := &engineBag{}
	defer engines.Close()
	startIter := 0
	if c.resumePath != "" {
		var err error
		if startIter, err = snapshot.PeekSolverIter(c.resumePath); err != nil {
			return err
		}
	}
	cfg := dist.ElasticConfig{
		Iters: c.iters,
		Rebuild: func(rank, size, iter int) (*net.Net, error) {
			n, eng, err := c.buildRankNet(src, rank, size)
			if err != nil {
				return nil, err
			}
			engines.add(eng)
			skipBatches(n, iter)
			return n, nil
		},
		Solver:       c.solverConfig(),
		Opts:         c.distOptions(),
		StartIter:    startIter,
		MinRanks:     c.minRanks,
		Rejoin:       c.rejoin,
		Heartbeat:    c.heartbeat,
		PeerTimeout:  c.peerTimeout,
		IterDeadline: c.iterDeadline,
	}
	if t.Rank() == 0 {
		cfg.FenceDir = c.fenceDir
		cfg.ResumePath = c.resumePath
		cfg.SnapshotPath = c.snapPath
	}
	rpt, err := dist.RunElastic(t, cfg)
	if err != nil {
		return fmt.Errorf("rank %d: %w", t.Rank(), err)
	}
	if t.Rank() == 0 {
		for _, f := range rpt.Fences {
			fmt.Printf("fence: epoch %d at iteration %d -> members %v (removed %v, joined %v), checkpoint %s\n",
				f.Epoch, f.Iter, f.Members, f.Removed, f.Joined, f.Checkpoint)
		}
		if len(rpt.Losses) > 0 {
			fmt.Printf("iter %5d  loss %.6f\n", c.iters, rpt.Losses[len(rpt.Losses)-1])
		}
		fmt.Printf("elastic run complete: %d ranks at finish, %d fence(s)\n", rpt.FinalSize, len(rpt.Fences))
		if c.snapPath != "" {
			fmt.Printf("snapshot written to %s (iteration %d)\n", c.snapPath, c.iters)
		}
	} else if rpt.Evicted {
		fmt.Printf("rank %d: evicted by fence, exiting cleanly\n", t.Rank())
	}
	return nil
}

// runLocalElastic is the in-process elastic run: k ranks over the Local
// transport, optionally with one seeded failure injected via -chaos-*.
// The victim's own error is the injection working, not a run failure —
// it is reported and tolerated; any other rank failing fails the run.
func runLocalElastic(c config) error {
	src, err := c.source()
	if err != nil {
		return err
	}
	scenario, err := c.chaosScenario()
	if err != nil {
		return err
	}
	group := transport.NewLocalGroup(c.replicas)
	trs := make([]transport.Transport, c.replicas)
	for r := range group {
		trs[r] = c.wrapFlaky(group[r])
	}
	victim := -1
	if scenario != nil {
		if _, err := scenario.Wrap(trs); err != nil {
			return err
		}
		victim = scenario.Victim
		fmt.Printf("chaos: %s\n", scenario)
	}
	errs := make([]error, c.replicas)
	done := make([]chan struct{}, c.replicas)
	for r := 0; r < c.replicas; r++ {
		done[r] = make(chan struct{})
		go func(r int) {
			defer close(done[r])
			rc := c
			if r != 0 {
				rc.tracePath = ""
			}
			errs[r] = runElasticRank(rc, trs[r], src)
			trs[r].Close()
		}(r)
	}
	// A hung victim blocks until its endpoint closes; waiting for the
	// survivors first, then closing the victim's transport, unblocks it
	// without ever abandoning a goroutine.
	for r := 0; r < c.replicas; r++ {
		if r != victim {
			<-done[r]
		}
	}
	if victim >= 0 {
		trs[victim].Close()
		<-done[victim]
	}
	for r, err := range errs {
		if err == nil {
			continue
		}
		if r == victim {
			fmt.Printf("rank %d failed as injected: %v\n", r, err)
			continue
		}
		return err
	}
	return nil
}

// runRank drives one rank to completion: build the node, step, and on
// the root print losses, write the snapshot and the trace. With -resume
// every rank positions its data cursor at the snapshot's iteration, the
// root reloads the solver state, and the group syncs weights before
// stepping — the same sequence the elastic supervisor runs after a
// fence, so a resumed run is bit-identical to one that never stopped.
func runRank(c config, t transport.Transport, n *net.Net) error {
	var tr *trace.Tracer
	if c.tracePath != "" {
		tr = trace.New(c.workers)
		n.SetTracer(tr)
	}
	opts := c.distOptions()
	startIter := 0
	if c.resumePath != "" {
		var err error
		if startIter, err = snapshot.PeekSolverIter(c.resumePath); err != nil {
			return err
		}
		if c.iters <= startIter {
			return fmt.Errorf("-iters %d is not beyond the resumed iteration %d (it is the absolute target)", c.iters, startIter)
		}
		skipBatches(n, startIter)
		opts.StartIter = startIter
	}
	var nd *dist.Node
	var err error
	if t.Rank() == 0 {
		nd, err = dist.NewRoot(t, n, c.solverConfig(), opts)
	} else {
		nd, err = dist.NewWorker(t, n, opts)
	}
	if err != nil {
		return err
	}
	if c.resumePath != "" {
		if t.Rank() == 0 {
			if err := snapshot.LoadSolverFile(c.resumePath, nd.Solver()); err != nil {
				return err
			}
			fmt.Printf("resumed from %s at iteration %d\n", c.resumePath, startIter)
		}
		if err := nd.SyncWeights(); err != nil {
			return fmt.Errorf("rank %d: resume sync: %w", t.Rank(), err)
		}
	}
	if t.Rank() == 0 {
		fmt.Printf("training %d iterations: %d replicas, %s reduce, %s wire, fanout %d, tree depth %d\n",
			c.iters-startIter, nd.Size(), c.reduce, c.gradWire, nd.Tree().Fanout(), nd.Tree().Depth())
	}
	remaining := c.iters - startIter
	for remaining > 0 {
		step := c.display
		if step <= 0 || step > remaining {
			step = remaining
		}
		losses, err := nd.Step(step)
		if t.Rank() == 0 && len(losses) > 0 {
			fmt.Printf("iter %5d  loss %.6f\n", nd.Iter(), losses[len(losses)-1])
		}
		if err != nil {
			return fmt.Errorf("rank %d: %w", t.Rank(), err)
		}
		remaining -= step
	}
	if t.Rank() == 0 && c.snapPath != "" {
		if err := snapshot.SaveSolverFile(c.snapPath, nd.Solver()); err != nil {
			return err
		}
		fmt.Printf("snapshot written to %s (iteration %d)\n", c.snapPath, nd.Solver().Iter())
	}
	if tr.Enabled() {
		if err := tr.WriteChromeTraceFile(c.tracePath); err != nil {
			return err
		}
		fmt.Printf("trace: %d spans written to %s\n", tr.Len(), c.tracePath)
	}
	return nil
}

// runLocal trains k in-process replicas over the Local transport — the
// single-process form of the exact same protocol the TCP roles run.
func runLocal(c config) error {
	if c.replicas < 1 {
		return fmt.Errorf("need -replicas >= 1")
	}
	if c.elastic {
		return runLocalElastic(c)
	}
	src, err := c.source()
	if err != nil {
		return err
	}
	group := transport.NewLocalGroup(c.replicas)
	nets := make([]*net.Net, c.replicas)
	engines := make([]core.Engine, c.replicas)
	for r := 0; r < c.replicas; r++ {
		if nets[r], engines[r], err = c.buildRankNet(src, r, c.replicas); err != nil {
			return err
		}
		defer engines[r].Close()
	}
	errs := make([]error, c.replicas)
	var wg sync.WaitGroup
	for r := 0; r < c.replicas; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rc := c
			if r != 0 {
				rc.tracePath = "" // one trace file: the root's
			}
			errs[r] = runRank(rc, c.wrapFlaky(group[r]), nets[r])
			group[r].Close()
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// runCoordinator is TCP rank 0: listen, publish the address, wait for
// the other replicas to join, then train as the root.
func runCoordinator(c config) error {
	if c.replicas < 2 {
		return fmt.Errorf("coordinator needs -replicas >= 2")
	}
	addr := c.addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	coord, err := transport.NewCoordinator(addr, c.replicas)
	if err != nil {
		return err
	}
	fmt.Printf("coordinator listening on %s (%d replicas)\n", coord.Addr(), c.replicas)
	if c.addrFile != "" {
		if err := writeAddrFile(c.addrFile, coord.Addr()); err != nil {
			return err
		}
	}
	src, err := c.source()
	if err != nil {
		return err
	}
	t, err := coord.Wait()
	if err != nil {
		return err
	}
	defer t.Close()
	if c.elastic {
		return runElasticRank(c, c.wrapFlaky(t), src)
	}
	n, eng, err := c.buildRankNet(src, 0, c.replicas)
	if err != nil {
		return err
	}
	defer eng.Close()
	return runRank(c, c.wrapFlaky(t), n)
}

// runWorker dials the coordinator (address from -addr or -addr-file),
// learns its rank from the rendezvous, and trains as a worker.
func runWorker(c config) error {
	addr := c.addr
	if addr == "" {
		if c.addrFile == "" {
			return fmt.Errorf("worker needs -addr or -addr-file")
		}
		var err error
		if addr, err = waitAddrFile(c.addrFile, 30*time.Second); err != nil {
			return err
		}
	}
	t, err := transport.DialTCP(addr)
	if err != nil {
		return err
	}
	defer t.Close()
	fmt.Printf("joined as rank %d of %d\n", t.Rank(), t.Size())
	src, err := c.source()
	if err != nil {
		return err
	}
	if c.elastic {
		// A TCP worker can be the chaos victim too: wrap its own
		// endpoint when -chaos-rank names this rank.
		tr := c.wrapFlaky(t)
		if s, err := c.chaosScenario(); err != nil {
			return err
		} else if s != nil && s.Victim == t.Rank() {
			fmt.Printf("chaos: %s (this rank)\n", s)
			tr = transport.NewChaos(tr, transport.ChaosConfig{
				Mode: s.Mode, AtIter: s.AtIter, Peers: s.Peers, StraggleDelay: s.Delay,
			}, 0)
		}
		return runElasticRank(c, tr, src)
	}
	n, eng, err := c.buildRankNet(src, t.Rank(), t.Size())
	if err != nil {
		return err
	}
	defer eng.Close()
	return runRank(c, c.wrapFlaky(t), n)
}

// writeAddrFile publishes the rendezvous address atomically (write to a
// temp name, rename) so a polling worker never reads a partial file.
func writeAddrFile(path, addr string) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte(addr+"\n"), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func waitAddrFile(path string, timeout time.Duration) (string, error) {
	deadline := time.Now().Add(timeout)
	for {
		raw, err := os.ReadFile(path)
		if err == nil && len(strings.TrimSpace(string(raw))) > 0 {
			return strings.TrimSpace(string(raw)), nil
		}
		if time.Now().After(deadline) {
			return "", fmt.Errorf("no coordinator address in %s after %s", path, timeout)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// runPredict is the EXPERIMENTS.md scaling study: calibrate the simtime
// cluster model from a measured single-replica run, then for each
// replica count compare the model's predicted iteration speedup with a
// measured in-process distributed run.
func runPredict(c config) error {
	src, err := c.source()
	if err != nil {
		return err
	}
	calIters := c.iters
	if calIters <= 0 {
		calIters = 20
	}

	// Calibration: serial full-batch stepping, which is also the
	// measured baseline (dist with k=1 is bit-identical to it).
	n, eng, err := c.buildRankNet(src, 0, 1)
	if err != nil {
		return err
	}
	s, err := solver.New(c.solverConfig(), n)
	if err != nil {
		eng.Close()
		return err
	}
	s.Step(2) // warm caches before timing
	start := time.Now()
	s.Step(calIters)
	serialPer := time.Since(start) / time.Duration(calIters)
	eng.Close()

	elems := 0
	for _, p := range n.Params() {
		elems += p.Count()
	}
	w := simtime.ClusterWorkload{
		ComputeUS:    float64(serialPer.Nanoseconds()) / 1e3,
		BackwardFrac: 0.55,
		ParamElems:   elems,
		ParamTensors: len(n.Params()),
	}
	m := simtime.LocalCluster(runtime.NumCPU())
	fmt.Printf("calibration: %.1f ms/iter serial, %d param elems in %d tensors, %d cores\n",
		float64(serialPer.Microseconds())/1e3, w.ParamElems, w.ParamTensors, runtime.NumCPU())
	fmt.Printf("%-9s %-8s %-6s %-6s %-12s %-12s %-12s %-10s\n",
		"replicas", "reduce", "wire", "fanout", "pred-ms/it", "meas-ms/it", "pred-spdup", "meas-spdup")
	fmt.Printf("%-9d %-8s %-6s %-6s %-12.2f %-12.2f %-12.2f %-10.2f\n",
		1, "-", "-", "-", float64(serialPer.Microseconds())/1e3, float64(serialPer.Microseconds())/1e3, 1.0, 1.0)

	// The design space the model covers: the tree baseline, the relay
	// ring at f32 (pricing the determinism relays), and the compressed
	// ring (the codec buying the relay bytes back). wireScale comes from
	// the codec's own WireLen so the model can never drift from the
	// implementation's framing.
	combos := []struct{ topo, wire string }{
		{dist.TopologyTree, "f32"},
		{dist.TopologyRing, "f32"},
		{dist.TopologyRing, "int8"},
	}
	for _, k := range []int{2, 4} {
		if c.globalBatch()%k != 0 {
			fmt.Printf("%-9d skipped: global batch %d not divisible\n", k, c.globalBatch())
			continue
		}
		for _, combo := range combos {
			codec, err := transport.CodecByName(combo.wire)
			if err != nil {
				return err
			}
			scale := float64(codec.WireLen(w.ParamElems)) / float64(w.ParamElems)
			pred := m.PredictEx(w, k, c.fanout, combo.topo, scale)
			cc := c
			cc.reduce, cc.gradWire = combo.topo, combo.wire
			measured, err := timeLocalRun(cc, src, k, calIters)
			if err != nil {
				return err
			}
			fmt.Printf("%-9d %-8s %-6s %-6d %-12.2f %-12.2f %-12.2f %-10.2f\n",
				k, combo.topo, combo.wire, c.fanout, pred.TotalUS/1e3,
				float64(measured.Microseconds())/float64(calIters)/1e3,
				pred.Speedup, float64(serialPer)/(float64(measured)/float64(calIters)))
		}
	}
	return nil
}

// timeLocalRun measures the wall time of iters in-process distributed
// iterations with k replicas (excluding setup).
func timeLocalRun(c config, src layers.Source, k, iters int) (time.Duration, error) {
	group := transport.NewLocalGroup(k)
	nets := make([]*net.Net, k)
	for r := 0; r < k; r++ {
		n, eng, err := c.buildRankNet(src, r, k)
		if err != nil {
			return 0, err
		}
		defer eng.Close()
		nets[r] = n
	}
	errs := make([]error, k)
	var wg sync.WaitGroup
	start := time.Now()
	for r := 0; r < k; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			var nd *dist.Node
			var err error
			if r == 0 {
				nd, err = dist.NewRoot(group[r], nets[r], c.solverConfig(), c.distOptions())
			} else {
				nd, err = dist.NewWorker(group[r], nets[r], c.distOptions())
			}
			if err == nil {
				_, err = nd.Step(iters)
			}
			errs[r] = err
			group[r].Close()
		}(r)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return elapsed, nil
}

func engineByName(name string, workers int) (core.Engine, error) {
	switch name {
	case "sequential", "seq":
		return core.NewSequential(), nil
	case "coarse":
		return core.NewCoarse(workers), nil
	case "fine":
		return core.NewFine(workers), nil
	case "tuned":
		return core.NewTuned(workers), nil
	default:
		return nil, fmt.Errorf("unknown engine %q (sequential|coarse|fine|tuned)", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dnncluster:", err)
	os.Exit(1)
}
