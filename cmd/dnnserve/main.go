// Command dnnserve is the production inference server: it loads a
// trained snapshot into a pool of forward-only replicas and serves
// predictions over HTTP, coalescing concurrent single requests into
// band-sized batches (SERVING.md).
//
//	dnntrain -zoo lenet -iters 500 -snapshot /tmp/lenet.cgdnn
//	dnnserve -zoo lenet -snapshot /tmp/lenet.cgdnn -addr :8080
//	curl -s localhost:8080/v1/info
//	dnnload  -addr localhost:8080 -concurrency 1,8,32
//
// SIGINT/SIGTERM drain in-flight requests before exiting; -addr :0
// picks a free port and -addr-file publishes the bound address for
// scripts.
package main

import (
	"context"
	"flag"
	"fmt"
	stdnet "net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"coarsegrain/internal/layers"
	"coarsegrain/internal/net"
	"coarsegrain/internal/prototxt"
	"coarsegrain/internal/serve"
	"coarsegrain/internal/trace"
	"coarsegrain/internal/zoo"
)

func main() {
	var (
		model    = flag.String("model", "", "network prototxt file")
		zooName  = flag.String("zoo", "", "built-in network: lenet | cifar10-full")
		snapPath = flag.String("snapshot", "", "trained snapshot to serve (required)")
		addr     = flag.String("addr", "127.0.0.1:8080", "listen address (use :0 for a random port)")
		addrFile = flag.String("addr-file", "", "write the bound address to this file (for scripts)")
		maxBatch = flag.Int("max-batch", 32, "dynamic batcher's maximum batch (the serving band size)")
		maxDelay = flag.Duration("max-delay", 2*time.Millisecond, "deadline the oldest queued request waits for a batch to fill")
		replicas = flag.Int("replicas", 1, "pre-warmed forward-only net replicas sharing one weight copy")
		queue    = flag.Int("queue", 0, "admission queue depth (default 4*max-batch)")
		scores   = flag.String("scores", "", "score blob name (default: ip2 for lenet, ip1 for cifar)")
		shape    = flag.String("shape", "", "per-sample input shape as C,H,W (default from -zoo)")
		classes  = flag.Int("classes", 0, "output classes (default from -zoo)")
		lowered  = flag.Bool("lowered", true, "use the im2col+GEMM convolution path (amortizes best across batches)")
		seed     = flag.Uint64("seed", 1, "weight-init seed (overwritten by the snapshot; kept for reproducible builds)")
		traceOut = flag.String("trace", "", "write a Chrome trace of batch/request spans here on shutdown")
	)
	flag.Parse()
	if *snapPath == "" {
		fatal(fmt.Errorf("need -snapshot (train one with: dnntrain -zoo lenet -iters 500 -snapshot model.cgdnn)"))
	}
	if *zooName == "" && *model == "" {
		fatal(fmt.Errorf("need -model or -zoo"))
	}

	cfg, err := buildConfig(*zooName, *model, *scores, *shape, *classes, *seed, *lowered)
	if err != nil {
		fatal(err)
	}
	cfg.MaxBatch = *maxBatch
	cfg.MaxDelay = *maxDelay
	cfg.Replicas = *replicas
	cfg.QueueDepth = *queue
	var tracer *trace.Tracer
	if *traceOut != "" {
		tracer = trace.New(*replicas)
		cfg.Tracer = tracer
	}

	s, err := serve.New(cfg)
	if err != nil {
		fatal(err)
	}
	if err := s.LoadSnapshot(*snapPath); err != nil {
		fatal(err)
	}
	s.Start()

	ln, err := stdnet.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound), 0o644); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("dnnserve: %s from %s on http://%s (max-batch %d, max-delay %v, replicas %d, queue %d)\n",
		cfg.Model, *snapPath, bound, cfg.MaxBatch, cfg.MaxDelay, cfg.Replicas, s.Config().QueueDepth)

	httpSrv := &http.Server{Handler: s.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		fmt.Printf("dnnserve: %v — draining\n", sig)
	case err := <-errCh:
		fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "dnnserve: shutdown:", err)
	}
	s.Close()
	st := s.Stats()
	fmt.Printf("dnnserve: served %d requests in %d batches (mean batch %.2f, mean latency %v, %d rejected)\n",
		st.Served, st.Batches, st.MeanBatch, st.MeanLatency, st.Rejected)
	if tracer.Enabled() {
		if err := tracer.WriteChromeTraceFile(*traceOut); err != nil {
			fatal(err)
		}
		fmt.Printf("dnnserve: wrote %d spans to %s\n", tracer.Len(), *traceOut)
	}
}

// buildConfig assembles the serve.Config for a zoo or prototxt model.
// The builder's batch size is corrected to MaxBatch by the replica
// constructor, so the value passed here is irrelevant.
func buildConfig(zooName, model, scoreBlob, shapeFlag string, classes int, seed uint64, lowered bool) (serve.Config, error) {
	cfg := serve.Config{Classes: classes, ScoreBlob: scoreBlob}
	switch {
	case strings.Contains(zooName, "lenet") || strings.Contains(zooName, "mnist"):
		cfg.SampleShape = []int{1, 28, 28}
		setDefault(&cfg, 10, "ip2")
	case strings.Contains(zooName, "cifar"):
		cfg.SampleShape = []int{3, 32, 32}
		setDefault(&cfg, 10, "ip1")
	}
	if shapeFlag != "" {
		shape, err := parseShape(shapeFlag)
		if err != nil {
			return cfg, err
		}
		cfg.SampleShape = shape
	}
	if len(cfg.SampleShape) == 0 {
		return cfg, fmt.Errorf("need -shape C,H,W for -model nets")
	}
	if cfg.Classes <= 0 {
		return cfg, fmt.Errorf("need -classes for -model nets")
	}
	if cfg.ScoreBlob == "" {
		return cfg, fmt.Errorf("need -scores for -model nets")
	}
	switch {
	case zooName != "":
		cfg.Model = zooName
		cfg.Build = func(src layers.Source) ([]net.LayerSpec, error) {
			return zoo.Build(zooName, src, zoo.Options{Seed: seed, LoweredConv: lowered})
		}
	default:
		raw, err := os.ReadFile(model)
		if err != nil {
			return cfg, err
		}
		cfg.Model = model
		cfg.Build = func(src layers.Source) ([]net.LayerSpec, error) {
			return prototxt.ParseNet(string(raw), prototxt.BuildOptions{Source: src, Seed: seed})
		}
	}
	return cfg, nil
}

func setDefault(cfg *serve.Config, classes int, scoreBlob string) {
	if cfg.Classes == 0 {
		cfg.Classes = classes
	}
	if cfg.ScoreBlob == "" {
		cfg.ScoreBlob = scoreBlob
	}
}

func parseShape(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	shape := make([]int, 0, len(parts))
	for _, p := range parts {
		d, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || d <= 0 {
			return nil, fmt.Errorf("bad -shape %q: want positive ints like 1,28,28", s)
		}
		shape = append(shape, d)
	}
	return shape, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dnnserve:", err)
	os.Exit(1)
}
