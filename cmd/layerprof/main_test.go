package main

import (
	"path/filepath"
	"strings"
	"testing"

	"coarsegrain/internal/trace"
)

// TestRunGoldenTableStructure profiles LeNet on a tiny synthetic batch and
// checks the structure of the report: header, every layer row in network
// order, TOTAL row, dominators line and memory line. Timings vary run to
// run, so the test pins layout and content, not numbers.
func TestRunGoldenTableStructure(t *testing.T) {
	var out strings.Builder
	err := run(options{
		Zoo: "lenet", Engine: "coarse", Workers: 2,
		Iters: 2, Warmup: 1, Batch: 4, Samples: 8, Seed: 1,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"engine coarse, 2 workers, 2 timed iterations",
		"layer", "fwd (us)", "bwd (us)", "weight",
		"TOTAL",
		"dominating layers (80% of time):",
		"network memory:",
		"privatization scratch:",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
	// Layer rows appear in network order.
	layerSeq := []string{"mnist", "conv1", "pool1", "conv2", "pool2", "ip1", "relu1", "ip2", "loss"}
	pos := -1
	for _, l := range layerSeq {
		i := strings.Index(got, "\n"+l+" ")
		if i < 0 {
			t.Fatalf("layer row %q missing:\n%s", l, got)
		}
		if i < pos {
			t.Fatalf("layer %q out of network order:\n%s", l, got)
		}
		pos = i
	}
}

// TestRunWithTrace runs the same profile with -trace and checks that the
// utilization report is appended and the Chrome JSON validates.
func TestRunWithTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	var out strings.Builder
	err := run(options{
		Zoo: "lenet", Engine: "coarse", Workers: 2,
		Iters: 2, Warmup: 1, Batch: 4, Samples: 8, Seed: 1,
		TracePath: path,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"worker utilization", "util", "imbal", "trace written to"} {
		if !strings.Contains(got, want) {
			t.Fatalf("traced output missing %q:\n%s", want, got)
		}
	}
	st, err := trace.ValidateChromeTraceFile(path)
	if err != nil {
		t.Fatalf("trace file invalid: %v", err)
	}
	if st.Complete == 0 {
		t.Fatal("trace has no complete events")
	}
	// driver + 2 workers
	if st.Threads != 3 {
		t.Fatalf("got %d threads, want 3", st.Threads)
	}
}

func TestRunUnknownEngine(t *testing.T) {
	var out strings.Builder
	if err := run(options{Zoo: "lenet", Engine: "warp"}, &out); err == nil {
		t.Fatal("expected error for unknown engine")
	}
}

func TestRunNeedsModelOrZoo(t *testing.T) {
	var out strings.Builder
	if err := run(options{Engine: "sequential"}, &out); err == nil {
		t.Fatal("expected error when neither -model nor -zoo given")
	}
}
