// Command layerprof profiles a network layer by layer under any engine —
// the measurement methodology behind the paper's Figures 4, 5, 7 and 8:
//
//	layerprof -zoo lenet -engine coarse -workers 8 -iters 5
//	layerprof -model configs/cifar10_full.prototxt -engine sequential
//
// It prints mean per-layer forward/backward times and each layer's share
// of the iteration, plus the engine's privatization footprint.
//
// With -trace out.json the iterations are also recorded by the span
// tracer: the per-layer table is then derived from the trace's driver
// spans (same format), a worker-utilization/imbalance report is appended,
// and the full span set is written as Chrome trace-event JSON (see
// OBSERVABILITY.md).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"coarsegrain/internal/core"
	"coarsegrain/internal/data"
	"coarsegrain/internal/layers"
	"coarsegrain/internal/net"
	"coarsegrain/internal/profile"
	"coarsegrain/internal/prototxt"
	"coarsegrain/internal/trace"
	"coarsegrain/internal/zoo"
)

// options collects everything main parses from flags, so tests can call
// run directly with a synthetic configuration.
type options struct {
	Model, Zoo string
	Engine     string
	Workers    int
	Iters      int
	Warmup     int
	Batch      int
	Samples    int
	Seed       uint64
	DataDir    string
	TracePath  string
}

func main() {
	var o options
	flag.StringVar(&o.Model, "model", "", "network prototxt file")
	flag.StringVar(&o.Zoo, "zoo", "", "built-in network: lenet | cifar10-full")
	flag.StringVar(&o.Engine, "engine", "sequential", "engine: sequential | coarse | fine | tuned")
	flag.IntVar(&o.Workers, "workers", 4, "worker count for parallel engines")
	flag.IntVar(&o.Iters, "iters", 5, "timed iterations")
	flag.IntVar(&o.Warmup, "warmup", 1, "warm-up iterations")
	flag.IntVar(&o.Batch, "batch", 0, "override batch size")
	flag.IntVar(&o.Samples, "samples", 512, "synthetic dataset size")
	flag.Uint64Var(&o.Seed, "seed", 1, "seed")
	flag.StringVar(&o.DataDir, "data", "", "directory with real dataset files")
	flag.StringVar(&o.TracePath, "trace", "", "also write a Chrome trace-event JSON of the timed iterations here")
	flag.Parse()

	if err := run(o, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "layerprof:", err)
		os.Exit(1)
	}
}

// run performs the profile and writes the report to w.
func run(o options, w io.Writer) error {
	ref := o.Zoo + o.Model
	var src layers.Source
	if strings.Contains(ref, "cifar") {
		src, _ = data.LoadCIFAR10(o.DataDir, o.Samples, o.Seed)
	} else {
		src, _ = data.LoadMNIST(o.DataDir, o.Samples, o.Seed)
	}

	var specs []net.LayerSpec
	var err error
	switch {
	case o.Zoo != "":
		specs, err = zoo.Build(o.Zoo, src, zoo.Options{BatchSize: o.Batch, Seed: o.Seed})
	case o.Model != "":
		raw, rerr := os.ReadFile(o.Model)
		if rerr != nil {
			return rerr
		}
		specs, err = prototxt.ParseNet(string(raw), prototxt.BuildOptions{
			Source: src, Seed: o.Seed, BatchOverride: o.Batch,
		})
	default:
		return fmt.Errorf("need -model or -zoo")
	}
	if err != nil {
		return err
	}

	var eng core.Engine
	switch o.Engine {
	case "sequential", "seq":
		eng = core.NewSequential()
	case "coarse":
		eng = core.NewCoarse(o.Workers)
	case "fine":
		eng = core.NewFine(o.Workers)
	case "tuned":
		eng = core.NewTuned(o.Workers)
	default:
		return fmt.Errorf("unknown engine %q", o.Engine)
	}
	defer eng.Close()

	n, err := net.New(specs, eng)
	if err != nil {
		return err
	}
	for i := 0; i < o.Warmup; i++ {
		n.ZeroParamDiffs()
		n.ForwardBackward()
	}
	rec := profile.NewRecorder()
	n.SetRecorder(rec)
	var tr *trace.Tracer
	if o.TracePath != "" {
		tr = trace.New(eng.Workers())
		n.SetTracer(tr)
	}
	for i := 0; i < o.Iters; i++ {
		n.ZeroParamDiffs()
		n.ForwardBackward()
	}

	fmt.Fprintf(w, "engine %s, %d workers, %d timed iterations\n\n", eng.Name(), eng.Workers(), o.Iters)
	fmt.Fprint(w, rec.Table())
	fmt.Fprintf(w, "\ndominating layers (80%% of time): %v\n", dominators(rec))
	fmt.Fprintf(w, "network memory: %.1f MB, privatization scratch: %.1f KB\n",
		float64(n.MemoryBytes())/(1<<20), float64(eng.ScratchBytes())/1024)

	if tr.Enabled() {
		spans := tr.Snapshot()
		fmt.Fprintf(w, "\nworker utilization (from %d spans):\n", len(spans))
		trace.WriteUtilizationReport(w, spans, eng.Workers())
		if err := tr.WriteChromeTraceFile(o.TracePath); err != nil {
			return err
		}
		fmt.Fprintf(w, "trace written to %s — open in chrome://tracing or https://ui.perfetto.dev\n", o.TracePath)
	}
	return nil
}

func dominators(rec *profile.Recorder) []string {
	names := rec.SortedLayersByCost()
	total := float64(rec.TotalMean())
	var out []string
	var acc float64
	for _, nm := range names {
		out = append(out, nm)
		acc += float64(rec.Mean(nm, profile.Forward) + rec.Mean(nm, profile.Backward))
		if acc/total >= 0.8 {
			break
		}
	}
	return out
}
