// Command layerprof profiles a network layer by layer under any engine —
// the measurement methodology behind the paper's Figures 4, 5, 7 and 8:
//
//	layerprof -zoo lenet -engine coarse -workers 8 -iters 5
//	layerprof -model configs/cifar10_full.prototxt -engine sequential
//
// It prints mean per-layer forward/backward times and each layer's share
// of the iteration, plus the engine's privatization footprint.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"coarsegrain/internal/core"
	"coarsegrain/internal/data"
	"coarsegrain/internal/layers"
	"coarsegrain/internal/net"
	"coarsegrain/internal/profile"
	"coarsegrain/internal/prototxt"
	"coarsegrain/internal/zoo"
)

func main() {
	var (
		model   = flag.String("model", "", "network prototxt file")
		zooName = flag.String("zoo", "", "built-in network: lenet | cifar10-full")
		engine  = flag.String("engine", "sequential", "engine: sequential | coarse | fine | tuned")
		workers = flag.Int("workers", 4, "worker count for parallel engines")
		iters   = flag.Int("iters", 5, "timed iterations")
		warmup  = flag.Int("warmup", 1, "warm-up iterations")
		batch   = flag.Int("batch", 0, "override batch size")
		samples = flag.Int("samples", 512, "synthetic dataset size")
		seed    = flag.Uint64("seed", 1, "seed")
		dataDir = flag.String("data", "", "directory with real dataset files")
	)
	flag.Parse()

	ref := *zooName + *model
	var src layers.Source
	if strings.Contains(ref, "cifar") {
		src, _ = data.LoadCIFAR10(*dataDir, *samples, *seed)
	} else {
		src, _ = data.LoadMNIST(*dataDir, *samples, *seed)
	}

	var specs []net.LayerSpec
	var err error
	switch {
	case *zooName != "":
		specs, err = zoo.Build(*zooName, src, zoo.Options{BatchSize: *batch, Seed: *seed})
	case *model != "":
		raw, rerr := os.ReadFile(*model)
		if rerr != nil {
			fatal(rerr)
		}
		specs, err = prototxt.ParseNet(string(raw), prototxt.BuildOptions{
			Source: src, Seed: *seed, BatchOverride: *batch,
		})
	default:
		fatal(fmt.Errorf("need -model or -zoo"))
	}
	if err != nil {
		fatal(err)
	}

	var eng core.Engine
	switch *engine {
	case "sequential", "seq":
		eng = core.NewSequential()
	case "coarse":
		eng = core.NewCoarse(*workers)
	case "fine":
		eng = core.NewFine(*workers)
	case "tuned":
		eng = core.NewTuned(*workers)
	default:
		fatal(fmt.Errorf("unknown engine %q", *engine))
	}
	defer eng.Close()

	n, err := net.New(specs, eng)
	if err != nil {
		fatal(err)
	}
	for i := 0; i < *warmup; i++ {
		n.ZeroParamDiffs()
		n.ForwardBackward()
	}
	rec := profile.NewRecorder()
	n.SetRecorder(rec)
	for i := 0; i < *iters; i++ {
		n.ZeroParamDiffs()
		n.ForwardBackward()
	}

	fmt.Printf("engine %s, %d workers, %d timed iterations\n\n", eng.Name(), eng.Workers(), *iters)
	fmt.Print(rec.Table())
	fmt.Printf("\ndominating layers (80%% of time): %v\n", dominators(rec))
	fmt.Printf("network memory: %.1f MB, privatization scratch: %.1f KB\n",
		float64(n.MemoryBytes())/(1<<20), float64(eng.ScratchBytes())/1024)
}

func dominators(rec *profile.Recorder) []string {
	names := rec.SortedLayersByCost()
	total := float64(rec.TotalMean())
	var out []string
	var acc float64
	for _, nm := range names {
		out = append(out, nm)
		acc += float64(rec.Mean(nm, profile.Forward) + rec.Mean(nm, profile.Backward))
		if acc/total >= 0.8 {
			break
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "layerprof:", err)
	os.Exit(1)
}
