#!/bin/sh
# check.sh — the repository's pre-commit gate: vet, build, dnnlint (the
# determinism/parallelism contract linter, see LINTING.md), the full test
# suite (including Example tests), race-detector passes over the parallel
# substrate (the BLAS band kernels, the worker pool, the span tracer, the
# instrumented net loop and the coarse engine), the reduction determinism
# sweep (the element-parallel ordered merge must stay bit-identical to the
# serial ordered merge at every worker count) plus a dedicated race pass
# over the spin-then-park barrier, a tracing smoke run that must produce
# valid Chrome trace-event JSON, and the robustness drills
# (ROBUSTNESS.md): the fault-injection suite, a seeded corrupt-checkpoint
# recovery smoke and a guard NaN-poison smoke. Run from anywhere inside
# the repo.
set -eu

cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== dnnlint (determinism & parallelism contracts) =="
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
go build -o "$tmpdir/dnnlint" ./cmd/dnnlint
"$tmpdir/dnnlint" ./...

# Self-test: the gate is worthless if the linter silently stops seeing
# violations, so prove it still fires on a known-bad fixture.
echo "== dnnlint self-test (must flag the seeded violation) =="
if "$tmpdir/dnnlint" -only parbody -src internal/lint/analyzers/testdata/src \
	./internal/lint/analyzers/testdata/src/parbody >/dev/null 2>&1; then
	echo "FAIL: dnnlint exited 0 on the seeded parbody fixture" >&2
	exit 1
fi
if "$tmpdir/dnnlint" -only orderedreduce -src internal/lint/analyzers/testdata/src \
	./internal/lint/analyzers/testdata/src/orderedreduce >/dev/null 2>&1; then
	echo "FAIL: dnnlint exited 0 on the seeded orderedreduce fixture (raw cross-rank fold)" >&2
	exit 1
fi
echo "seeded violations detected, as required"

echo "== go test =="
go test ./...

echo "== go test -run Example (doc examples) =="
go test -run Example ./...

echo "== go test -race (blas, par, trace, net, core, guard, faultinject) =="
go test -race -count=1 ./internal/blas ./internal/par ./internal/trace ./internal/net ./internal/core \
	./internal/guard ./internal/faultinject

echo "== reduction determinism sweep (OrderedSlices bit-identical across P) =="
go test -count=1 -run 'TestOrderedSlicesBitIdenticalToOrdered|TestOrderedSlicesMergeBitIdenticalAcrossWorkers' \
	./internal/par ./internal/core

echo "== barrier stress under race (spin-then-park fork/join) =="
go test -race -count=1 -run 'TestBarrier|TestOrderedSlices|TestPanic|TestRegion' ./internal/par

echo "== fault-injection suite (deterministic drills + e2e crash recovery) =="
go test -count=1 ./internal/faultinject ./internal/snapshot

echo "== trace smoke: dnnbench -trace | tracecheck =="
go build -o "$tmpdir/dnnbench" ./cmd/dnnbench
go build -o "$tmpdir/tracecheck" ./cmd/tracecheck
"$tmpdir/dnnbench" -trace "$tmpdir/out.json" -net mnist -threads 2 -iters 2 -batch 4 -samples 8 >/dev/null
"$tmpdir/tracecheck" "$tmpdir/out.json"

echo "== recovery smoke: corrupt newest checkpoint, resume must fall back =="
go build -o "$tmpdir/dnntrain" ./cmd/dnntrain
"$tmpdir/dnntrain" -zoo lenet -iters 20 -snapshot-every 10 -snapshot-dir "$tmpdir/ck" \
	-samples 8 -batch 8 -display 10 -workers 2 >/dev/null
out="$("$tmpdir/dnntrain" -zoo lenet -resume "$tmpdir/ck" -inject-corrupt-resume -inject-seed 7 \
	-iters 10 -samples 8 -batch 8 -display 10 -workers 2)"
echo "$out" | grep -q "falling back" || { echo "FAIL: corrupt checkpoint not skipped" >&2; exit 1; }
echo "$out" | grep -q "resumed from .*ckpt-00000010" || { echo "FAIL: did not resume from the surviving checkpoint" >&2; exit 1; }
echo "fell back past the corrupted checkpoint, as required"

echo "== guard smoke: injected gradient NaN must be caught and skipped =="
"$tmpdir/dnntrain" -zoo lenet -iters 10 -inject-grad-nan 5 -guard-policy skip \
	-samples 8 -batch 8 -display 10 -workers 2 |
	grep -q "1 faults (1 skipped" || { echo "FAIL: guard missed the injected NaN" >&2; exit 1; }
echo "injected NaN caught and skipped, as required"

echo "OK"
