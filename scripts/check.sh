#!/bin/sh
# check.sh — the repository's pre-commit gate: vet, build, the full test
# suite, and race-detector passes over the parallel substrate (the BLAS
# band kernels and the worker pool). Run from anywhere inside the repo.
set -eu

cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race (blas, par) =="
go test -race -count=1 ./internal/blas ./internal/par

echo "OK"
