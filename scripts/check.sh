#!/bin/sh
# check.sh — the repository's pre-commit gate: vet, build, the full test
# suite (including Example tests), race-detector passes over the parallel
# substrate (the BLAS band kernels, the worker pool and the span tracer),
# and a tracing smoke run that must produce valid Chrome trace-event JSON.
# Run from anywhere inside the repo.
set -eu

cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -run Example (doc examples) =="
go test -run Example ./...

echo "== go test -race (blas, par, trace, net) =="
go test -race -count=1 ./internal/blas ./internal/par ./internal/trace ./internal/net

echo "== trace smoke: dnnbench -trace | tracecheck =="
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
go build -o "$tmpdir/dnnbench" ./cmd/dnnbench
go build -o "$tmpdir/tracecheck" ./cmd/tracecheck
"$tmpdir/dnnbench" -trace "$tmpdir/out.json" -net mnist -threads 2 -iters 2 -batch 4 -samples 8 >/dev/null
"$tmpdir/tracecheck" "$tmpdir/out.json"

echo "OK"
