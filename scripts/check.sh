#!/bin/sh
# check.sh — the repository's pre-commit gate: vet, build, dnnlint (the
# determinism/parallelism contract linter, see LINTING.md), the full test
# suite (including Example tests), race-detector passes over the parallel
# substrate (the BLAS band kernels, the worker pool, the span tracer, the
# instrumented net loop and the coarse engine), and a tracing smoke run
# that must produce valid Chrome trace-event JSON. Run from anywhere
# inside the repo.
set -eu

cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== dnnlint (determinism & parallelism contracts) =="
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
go build -o "$tmpdir/dnnlint" ./cmd/dnnlint
"$tmpdir/dnnlint" ./...

# Self-test: the gate is worthless if the linter silently stops seeing
# violations, so prove it still fires on a known-bad fixture.
echo "== dnnlint self-test (must flag the seeded violation) =="
if "$tmpdir/dnnlint" -only parbody -src internal/lint/analyzers/testdata/src \
	./internal/lint/analyzers/testdata/src/parbody >/dev/null 2>&1; then
	echo "FAIL: dnnlint exited 0 on the seeded parbody fixture" >&2
	exit 1
fi
echo "seeded violation detected, as required"

echo "== go test =="
go test ./...

echo "== go test -run Example (doc examples) =="
go test -run Example ./...

echo "== go test -race (blas, par, trace, net, core) =="
go test -race -count=1 ./internal/blas ./internal/par ./internal/trace ./internal/net ./internal/core

echo "== trace smoke: dnnbench -trace | tracecheck =="
go build -o "$tmpdir/dnnbench" ./cmd/dnnbench
go build -o "$tmpdir/tracecheck" ./cmd/tracecheck
"$tmpdir/dnnbench" -trace "$tmpdir/out.json" -net mnist -threads 2 -iters 2 -batch 4 -samples 8 >/dev/null
"$tmpdir/tracecheck" "$tmpdir/out.json"

echo "OK"
