#!/bin/sh
# check.sh — the repository's pre-commit gate: vet, build, dnnlint (the
# determinism/parallelism contract linter; LINTING.md is the canonical
# catalogue of its analyzers and this script's self-tests follow its
# order), the full test suite (including Example tests), race-detector
# passes over the parallel substrate (the BLAS band kernels, the worker
# pool, the span tracer, the instrumented net loop, the coarse engine and
# the serving layer), the reduction determinism sweep (the
# element-parallel ordered merge must stay bit-identical to the serial
# ordered merge at every worker count) plus a dedicated race pass over
# the spin-then-park barrier, a tracing smoke run that must produce valid
# Chrome trace-event JSON, the robustness drills (ROBUSTNESS.md): the
# fault-injection suite, a seeded corrupt-checkpoint recovery smoke and a
# guard NaN-poison smoke, a serving smoke (SERVING.md): dnnserve on a
# random port answering a dnnload probe and draining cleanly on SIGTERM,
# and a distributed smoke (DISTRIBUTED.md): a coordinator + 2 workers
# over loopback TCP whose final snapshot must be bit-identical to the
# single-process run with ring-topology and compressed-wire CRC pins,
# plus an elastic smoke that crashes 1 of 3 ranks
# mid-run and requires the survivors' final snapshot to be bit-identical
# to a clean 2-rank resume from the fence checkpoint. Run from anywhere
# inside the repo.
set -eu

cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== dnnlint (determinism & parallelism contracts) =="
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
go build -o "$tmpdir/dnnlint" ./cmd/dnnlint
"$tmpdir/dnnlint" ./...

# Self-test: the gate is worthless if the linter silently stops seeing
# violations, so prove each invariant still fires on a known-bad fixture.
# One probe per analyzer, in the catalogue order of LINTING.md §1–9
# (parbody, orderedreduce, blobalias, hotalloc, tracenil, transerr,
# gorolife, phasespan, chanmisuse); parbody and hotalloc get second
# probes for their interprocedural v2 extensions (interproc, hotcall)
# and hotalloc a third for the serving path (servehot). The probes
# reuse the dnnlint binary built above — one `go build`, many runs.
echo "== dnnlint self-test (each seeded violation must be flagged) =="
lint_probe() { # lint_probe <analyzer> <fixture-pkg>
	if "$tmpdir/dnnlint" -only "$1" -src internal/lint/analyzers/testdata/src \
		"./internal/lint/analyzers/testdata/src/$2" >/dev/null 2>&1; then
		echo "FAIL: dnnlint exited 0 on the seeded $2 fixture (analyzer $1)" >&2
		exit 1
	fi
}
lint_probe parbody parbody
lint_probe parbody interproc
lint_probe orderedreduce orderedreduce
lint_probe blobalias blobalias
lint_probe hotalloc hotalloc
lint_probe hotalloc hotcall
lint_probe hotalloc servehot
lint_probe tracenil tracenil
lint_probe transerr transerr
lint_probe gorolife gorolife
lint_probe phasespan phasespan
lint_probe chanmisuse chanmisuse
echo "seeded violations detected, as required"

echo "== go test =="
go test ./...

echo "== go test -run Example (doc examples) =="
go test -run Example ./...

echo "== go test -race (blas, par, trace, net, core, guard, faultinject, serve, transport, dist) =="
go test -race -count=1 ./internal/blas ./internal/par ./internal/trace ./internal/net ./internal/core \
	./internal/guard ./internal/faultinject ./internal/serve ./internal/transport ./internal/dist

echo "== reduction determinism sweep (OrderedSlices bit-identical across P) =="
go test -count=1 -run 'TestOrderedSlicesBitIdenticalToOrdered|TestOrderedSlicesMergeBitIdenticalAcrossWorkers' \
	./internal/par ./internal/core

echo "== barrier stress under race (spin-then-park fork/join) =="
go test -race -count=1 -run 'TestBarrier|TestOrderedSlices|TestPanic|TestRegion' ./internal/par

echo "== fault-injection suite (deterministic drills + e2e crash recovery) =="
go test -count=1 ./internal/faultinject ./internal/snapshot

echo "== trace smoke: dnnbench -trace | tracecheck =="
go build -o "$tmpdir/dnnbench" ./cmd/dnnbench
go build -o "$tmpdir/tracecheck" ./cmd/tracecheck
"$tmpdir/dnnbench" -trace "$tmpdir/out.json" -net mnist -threads 2 -iters 2 -batch 4 -samples 8 >/dev/null
"$tmpdir/tracecheck" "$tmpdir/out.json"

echo "== recovery smoke: corrupt newest checkpoint, resume must fall back =="
go build -o "$tmpdir/dnntrain" ./cmd/dnntrain
"$tmpdir/dnntrain" -zoo lenet -iters 20 -snapshot-every 10 -snapshot-dir "$tmpdir/ck" \
	-samples 8 -batch 8 -display 10 -workers 2 >/dev/null
out="$("$tmpdir/dnntrain" -zoo lenet -resume "$tmpdir/ck" -inject-corrupt-resume -inject-seed 7 \
	-iters 10 -samples 8 -batch 8 -display 10 -workers 2)"
echo "$out" | grep -q "falling back" || { echo "FAIL: corrupt checkpoint not skipped" >&2; exit 1; }
echo "$out" | grep -q "resumed from .*ckpt-00000010" || { echo "FAIL: did not resume from the surviving checkpoint" >&2; exit 1; }
echo "fell back past the corrupted checkpoint, as required"

echo "== guard smoke: injected gradient NaN must be caught and skipped =="
"$tmpdir/dnntrain" -zoo lenet -iters 10 -inject-grad-nan 5 -guard-policy skip \
	-samples 8 -batch 8 -display 10 -workers 2 |
	grep -q "1 faults (1 skipped" || { echo "FAIL: guard missed the injected NaN" >&2; exit 1; }
echo "injected NaN caught and skipped, as required"

echo "== serving smoke: dnnserve answers a dnnload probe, drains on SIGTERM =="
go build -o "$tmpdir/dnnserve" ./cmd/dnnserve
go build -o "$tmpdir/dnnload" ./cmd/dnnload
"$tmpdir/dnntrain" -zoo lenet -iters 10 -samples 8 -batch 8 -display 10 -workers 2 \
	-snapshot "$tmpdir/lenet.cgdnn" >/dev/null
"$tmpdir/dnnserve" -zoo lenet -snapshot "$tmpdir/lenet.cgdnn" \
	-addr 127.0.0.1:0 -addr-file "$tmpdir/serve.addr" >"$tmpdir/serve.log" 2>&1 &
serve_pid=$!
for _ in $(seq 1 100); do
	[ -s "$tmpdir/serve.addr" ] && break
	sleep 0.1
done
[ -s "$tmpdir/serve.addr" ] || { echo "FAIL: dnnserve never published its address" >&2; cat "$tmpdir/serve.log" >&2; exit 1; }
"$tmpdir/dnnload" -addr "$(cat "$tmpdir/serve.addr")" -probe ||
	{ echo "FAIL: dnnload probe rejected the serve response" >&2; kill "$serve_pid" 2>/dev/null; exit 1; }
kill -TERM "$serve_pid"
wait "$serve_pid" || { echo "FAIL: dnnserve did not exit cleanly on SIGTERM" >&2; cat "$tmpdir/serve.log" >&2; exit 1; }
grep -q "draining" "$tmpdir/serve.log" || { echo "FAIL: SIGTERM drain message missing" >&2; exit 1; }
echo "probe answered and SIGTERM drained, as required"

echo "== distributed smoke: 3-rank TCP run bit-identical to in-process run =="
# Coordinator + 2 workers over loopback TCP must write the exact bytes
# the single-process Local-transport run writes (DISTRIBUTED.md's
# determinism contract, checked end to end through real sockets).
go build -o "$tmpdir/dnncluster" ./cmd/dnncluster
"$tmpdir/dnncluster" -role coordinator -replicas 3 -batch 48 -samples 48 -iters 4 \
	-addr 127.0.0.1:0 -addr-file "$tmpdir/coord.addr" -zoo lenet -display 4 \
	-snapshot "$tmpdir/tcp.cgdnn" >"$tmpdir/coord.log" 2>&1 &
coord_pid=$!
"$tmpdir/dnncluster" -role worker -addr-file "$tmpdir/coord.addr" -batch 48 -samples 48 \
	-iters 4 -zoo lenet >"$tmpdir/worker1.log" 2>&1 &
w1_pid=$!
"$tmpdir/dnncluster" -role worker -addr-file "$tmpdir/coord.addr" -batch 48 -samples 48 \
	-iters 4 -zoo lenet >"$tmpdir/worker2.log" 2>&1 &
w2_pid=$!
wait "$coord_pid" || { echo "FAIL: coordinator exited nonzero" >&2; cat "$tmpdir/coord.log" >&2; exit 1; }
wait "$w1_pid" || { echo "FAIL: worker 1 exited nonzero" >&2; cat "$tmpdir/worker1.log" >&2; exit 1; }
wait "$w2_pid" || { echo "FAIL: worker 2 exited nonzero" >&2; cat "$tmpdir/worker2.log" >&2; exit 1; }
"$tmpdir/dnncluster" -role local -replicas 3 -batch 48 -samples 48 -iters 4 -zoo lenet \
	-display 4 -snapshot "$tmpdir/local.cgdnn" >/dev/null
tcp_crc="$(cksum <"$tmpdir/tcp.cgdnn")"
local_crc="$(cksum <"$tmpdir/local.cgdnn")"
[ "$tcp_crc" = "$local_crc" ] ||
	{ echo "FAIL: TCP snapshot CRC ($tcp_crc) != local snapshot CRC ($local_crc)" >&2; exit 1; }
echo "TCP and in-process snapshots bit-identical (cksum $tcp_crc), as required"

echo "== ring + compressed wire smoke: f32 ring == tree; int8 deterministic, != f32 =="
# DISTRIBUTED.md section 9: the ring topology relays contributions
# bit-unchanged, so an f32 ring run writes the exact snapshot the tree
# run writes; an int8 (error-feedback) run is deterministic — identical
# across reruns — but trains on quantized bits, so its snapshot must
# differ from f32's. Both pins through the real CLI, CRC-checked.
"$tmpdir/dnncluster" -role local -replicas 3 -reduce ring -batch 48 -samples 48 -iters 4 \
	-zoo lenet -display 4 -snapshot "$tmpdir/ring.cgdnn" >/dev/null
ring_crc="$(cksum <"$tmpdir/ring.cgdnn")"
[ "$ring_crc" = "$local_crc" ] ||
	{ echo "FAIL: f32 ring snapshot CRC ($ring_crc) != tree CRC ($local_crc)" >&2; exit 1; }
"$tmpdir/dnncluster" -role local -replicas 3 -reduce ring -grad-wire int8 -batch 48 \
	-samples 48 -iters 4 -zoo lenet -display 4 -snapshot "$tmpdir/int8-a.cgdnn" >/dev/null
"$tmpdir/dnncluster" -role local -replicas 3 -reduce ring -grad-wire int8 -batch 48 \
	-samples 48 -iters 4 -zoo lenet -display 4 -snapshot "$tmpdir/int8-b.cgdnn" >/dev/null
int8a_crc="$(cksum <"$tmpdir/int8-a.cgdnn")"
int8b_crc="$(cksum <"$tmpdir/int8-b.cgdnn")"
[ "$int8a_crc" = "$int8b_crc" ] ||
	{ echo "FAIL: int8 ring reruns differ ($int8a_crc vs $int8b_crc)" >&2; exit 1; }
[ "$int8a_crc" != "$local_crc" ] ||
	{ echo "FAIL: int8 snapshot identical to f32 ($int8a_crc) — compression not applied?" >&2; exit 1; }
echo "f32 ring == tree; int8 ring deterministic and distinct from f32 (cksum $int8a_crc), as required"

echo "== elastic smoke: kill 1 of 3 ranks, recover bit-identical to a clean 2-rank resume =="
# ROBUSTNESS.md's cluster contract: crash a worker mid-run under the
# elastic supervisor, let the survivors fence and continue, and the
# final snapshot must be byte-for-byte what a fresh 2-rank run resumed
# from the fence checkpoint produces.
"$tmpdir/dnncluster" -role local -elastic -replicas 3 -batch 48 -samples 48 -iters 6 \
	-zoo lenet -display 6 -chaos-mode crash -chaos-rank 2 -chaos-iter 2 \
	-fence-dir "$tmpdir/fences" -snapshot "$tmpdir/elastic.cgdnn" >"$tmpdir/elastic.log" 2>&1 ||
	{ echo "FAIL: elastic run exited nonzero" >&2; cat "$tmpdir/elastic.log" >&2; exit 1; }
grep -q "fence: epoch 1 at iteration 2" "$tmpdir/elastic.log" ||
	{ echo "FAIL: expected fence at iteration 2 missing" >&2; cat "$tmpdir/elastic.log" >&2; exit 1; }
[ -f "$tmpdir/fences/ckpt-00000002.cgdnn" ] ||
	{ echo "FAIL: fence checkpoint not written" >&2; exit 1; }
"$tmpdir/dnncluster" -role local -replicas 2 -batch 48 -samples 48 -iters 6 -zoo lenet \
	-display 6 -resume "$tmpdir/fences/ckpt-00000002.cgdnn" \
	-snapshot "$tmpdir/elastic-ref.cgdnn" >/dev/null
elastic_crc="$(cksum <"$tmpdir/elastic.cgdnn")"
ref_crc="$(cksum <"$tmpdir/elastic-ref.cgdnn")"
[ "$elastic_crc" = "$ref_crc" ] ||
	{ echo "FAIL: post-crash snapshot CRC ($elastic_crc) != clean-resume CRC ($ref_crc)" >&2; exit 1; }
echo "crash-recovery snapshot bit-identical to clean 2-rank resume (cksum $elastic_crc), as required"

echo "OK"
